#include "core/ga.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/checksum.hpp"
#include "common/thread_pool.hpp"
#include "core/improvement.hpp"
#include "core/run_control.hpp"
#include "model/system.hpp"
#include "power/power_model.hpp"

namespace mmsyn {

namespace ga_detail {

int clamped_offspring_count(double replacement_fraction, int population_size,
                            int elite_count) {
  const int n = population_size;
  const int count =
      std::max(2, static_cast<int>(replacement_fraction * n) & ~1);
  // Offspring fill the ranked-worst slots upwards; without the clamp a
  // high replacement fraction overwrites the elite (and the incumbent
  // best at slot 0).
  return std::min(count, std::max(0, n - elite_count));
}

int immigrant_slot(int population_size, int offspring_count,
                   int immigrant_index) {
  return population_size - 1 - offspring_count - immigrant_index;
}

int immigrant_count(double immigrant_fraction, int population_size,
                    int offspring_count, int elite_count) {
  int requested =
      static_cast<int>(immigrant_fraction * population_size);
  // Truncation starves small populations of immigrants entirely (0.08 *
  // 12 == 0 forever); a positive fraction means "keep exploration alive",
  // so it requests at least one.
  if (requested == 0 && immigrant_fraction > 0.0) requested = 1;
  // Cap by the free slots: immigrants fill downwards from just below the
  // offspring block, and the elite slots [0, elite_count) are reserved —
  // slot == elite_count is the first insertable one.
  int count = 0;
  while (count < requested &&
         immigrant_slot(population_size, offspring_count, count) >=
             elite_count)
    ++count;
  return count;
}

}  // namespace ga_detail

MappingGa::MappingGa(const System& system, const Evaluator& evaluator,
                     FitnessParams fitness_params,
                     AllocationOptions alloc_options, GaOptions options,
                     std::uint64_t seed)
    : system_(system),
      evaluator_(evaluator),
      fitness_params_(fitness_params),
      alloc_options_(alloc_options),
      options_(options),
      codec_(system),
      seed_(seed),
      rng_(options.rng, seed, options.rng_stream),
      mode_cache_(options.mode_cache_capacity) {
  const int threads = ThreadPool::resolve_thread_count(options_.num_threads);
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
}

MappingGa::~MappingGa() = default;

MappingGa::CachedFitness MappingGa::finish_fitness(
    const Evaluation& eval) const {
  CachedFitness c;
  c.fitness = mapping_fitness(eval, evaluator_, fitness_params_);
  c.violation = constraint_violation(eval, evaluator_);
  c.area_infeasible = !eval.area_feasible();
  c.timing_infeasible = !eval.timing_feasible();
  c.transition_infeasible = !eval.transitions_feasible();
  c.power_true = eval.avg_power_true;
  return c;
}

MappingGa::CachedFitness MappingGa::compute_fitness(
    const Genome& genome) const {
  const MultiModeMapping mapping = codec_.decode(genome);
  const CoreAllocation cores =
      build_core_allocation(system_, mapping, alloc_options_);
  return finish_fitness(evaluator_.evaluate(mapping, cores));
}

bool MappingGa::mode_cache_active() const {
  // keep_schedules results cannot be cached (the memo stores no
  // schedules); the GA hot loop never keeps them.
  return options_.memoize_mode_evaluations &&
         !evaluator_.options().keep_schedules;
}

void MappingGa::cache_insert(const Genome& genome, const CachedFitness& value) {
  const std::size_t cap = options_.memoize_cache_capacity;
  if (cap > 0) {
    while (cache_.size() >= cap && !cache_order_.empty()) {
      cache_.erase(cache_order_.front());
      cache_order_.pop_front();
    }
  }
  if (cache_.emplace(genome, value).second) cache_order_.push_back(genome);
}

void MappingGa::evaluate_batch(const std::vector<Individual*>& batch) {
  constexpr std::size_t kNoJob = static_cast<std::size_t>(-1);

  auto apply = [](Individual& ind, const CachedFitness& c) {
    ind.fitness = c.fitness;
    ind.violation = c.violation;
    ind.area_infeasible = c.area_infeasible;
    ind.timing_infeasible = c.timing_infeasible;
    ind.transition_infeasible = c.transition_infeasible;
    ind.power_true = c.power_true;
    ind.evaluated = true;
  };

  // Phase 1 (serial, batch order): cache lookups plus in-batch dedup.
  // A genome that repeats inside the batch would, one-at-a-time, hit the
  // cache on its second occurrence — mirror that accounting exactly.
  std::vector<const Genome*> jobs;
  std::vector<std::size_t> job_of(batch.size(), kNoJob);
  std::unordered_map<Genome, std::size_t, GenomeHash> in_flight;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Individual& ind = *batch[i];
    if (options_.memoize_evaluations) {
      ++cache_lookups_;
      if (auto it = cache_.find(ind.genome); it != cache_.end()) {
        ++cache_hits_;
        apply(ind, it->second);
        continue;
      }
      if (auto it = in_flight.find(ind.genome); it != in_flight.end()) {
        ++cache_hits_;
        job_of[i] = it->second;
        continue;
      }
      in_flight.emplace(ind.genome, jobs.size());
    }
    job_of[i] = jobs.size();
    jobs.push_back(&ind.genome);
  }

  // Phase 2: pure evaluations, one slot per unique genome — through the
  // per-mode memo when it is active (see evaluate_jobs_incremental), as
  // plain whole-genome evaluations otherwise.
  std::vector<CachedFitness> results(jobs.size());
  if (mode_cache_active()) {
    evaluate_jobs_incremental(jobs, results);
  } else {
    auto run_job = [&](std::size_t j) {
      results[j] = compute_fitness(*jobs[j]);
    };
    if (pool_ && jobs.size() > 1) {
      pool_->parallel_for(jobs.size(), run_job);
    } else {
      for (std::size_t j = 0; j < jobs.size(); ++j) run_job(j);
    }
  }

  // Phase 3 (serial, job then batch order): counters, cache, results.
  evaluations_ += static_cast<long>(jobs.size());
  if (options_.memoize_evaluations)
    for (std::size_t j = 0; j < jobs.size(); ++j)
      cache_insert(*jobs[j], results[j]);
  for (std::size_t i = 0; i < batch.size(); ++i)
    if (job_of[i] != kNoJob) apply(*batch[i], results[job_of[i]]);
}

void MappingGa::evaluate_jobs_incremental(
    const std::vector<const Genome*>& jobs,
    std::vector<CachedFitness>& results) {
  constexpr std::size_t kNoJob = static_cast<std::size_t>(-1);
  const std::size_t n_modes = system_.omsm.mode_count();

  // Phase 2a (parallel): decode, allocate cores, and build every mode's
  // cache key. Pure per job, no shared state touched.
  struct JobState {
    MultiModeMapping mapping;
    CoreAllocation cores;
    std::vector<ModeEvalKey> keys;
    std::vector<ModeEvaluation> modes;
    /// Per mode: index into `mode_jobs` when the inner loop still has to
    /// run, kNoJob when the cache served it.
    std::vector<std::size_t> pending;
  };
  std::vector<JobState> states(jobs.size());
  auto prepare = [&](std::size_t j) {
    JobState& st = states[j];
    st.mapping = codec_.decode(*jobs[j]);
    st.cores = build_core_allocation(system_, st.mapping, alloc_options_);
    st.keys.reserve(n_modes);
    for (std::size_t m = 0; m < n_modes; ++m)
      st.keys.push_back(evaluator_.mode_key(m, st.mapping, st.cores));
    st.modes.resize(n_modes);
    st.pending.assign(n_modes, kNoJob);
  };
  if (pool_ && jobs.size() > 1) {
    pool_->parallel_for(jobs.size(), prepare);
  } else {
    for (std::size_t j = 0; j < jobs.size(); ++j) prepare(j);
  }

  // Phase 2b (serial, job then mode order): memo lookups with in-flight
  // dedup — two jobs sharing a mode slice schedule its inner loop once;
  // the alias is credited as the hit a one-at-a-time run would have seen
  // on the entry its predecessor inserted. A whole-mode miss additionally
  // probes the schedule-stage store here (one-at-a-time semantics again:
  // serial evaluation probes it exactly on whole-mode misses). Within one
  // evaluator both key tiers partition identically — equal schedule keys
  // imply equal whole-mode keys — so the in-flight dedup at the whole-mode
  // level already covers the schedule tier and no schedule-level aliasing
  // can occur inside a batch.
  struct ModeJob {
    std::size_t job;  // owning job: runs the inner loop, inserts the result
    std::size_t mode;
    ModeEvalKey skey;  // schedule-stage key (owner inserts on a miss)
    /// Schedule-store hit; stays valid through phase 2c because no
    /// insert_schedule happens before phase 2d.
    const ModeSchedule* cached_schedule = nullptr;
  };
  std::vector<ModeJob> mode_jobs;
  std::unordered_map<ModeEvalKey, std::size_t, ModeEvalKeyHash> in_flight;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    JobState& st = states[j];
    for (std::size_t m = 0; m < n_modes; ++m) {
      if (const ModeEvaluation* cached = mode_cache_.find(st.keys[m])) {
        st.modes[m] = *cached;  // copy: the pointer dies on the next insert
        continue;
      }
      if (auto it = in_flight.find(st.keys[m]); it != in_flight.end()) {
        mode_cache_.credit_hit();
        st.pending[m] = it->second;
        continue;
      }
      in_flight.emplace(st.keys[m], mode_jobs.size());
      st.pending[m] = mode_jobs.size();
      ModeJob mj{j, m, evaluator_.schedule_key(m, st.mapping, st.cores),
                 nullptr};
      mj.cached_schedule = mode_cache_.find_schedule(mj.skey);
      mode_jobs.push_back(std::move(mj));
    }
  }

  // Phase 2c (parallel): the missing inner loops, one disjoint slot each.
  // Schedule-store hits resume the pipeline from the schedule artifact
  // (stages 3–5 only); misses run stages 1–2 into `built[k]` so the
  // serial phase 2d can publish the artifact, then finish with the same
  // resumed path — cold and cached execution share every stage function,
  // which is what makes a hit bitwise-indistinguishable from a recompute.
  std::vector<ModeEvaluation> fresh(mode_jobs.size());
  std::vector<ModeSchedule> built(mode_jobs.size());
  const ModePipeline& pipeline = evaluator_.pipeline();
  auto run_mode = [&](std::size_t k) {
    const ModeJob& mj = mode_jobs[k];
    const JobState& st = states[mj.job];
    const ModeMapping& mm = st.mapping.modes[mj.mode];
    if (mj.cached_schedule != nullptr) {
      fresh[k] = pipeline.evaluate_scheduled(mj.mode, mm, *mj.cached_schedule);
      return;
    }
    built[k] = pipeline.build_schedule(mj.mode, mm, st.cores.per_mode[mj.mode]);
    fresh[k] = pipeline.evaluate_scheduled(mj.mode, mm, built[k]);
  };
  if (pool_ && mode_jobs.size() > 1) {
    pool_->parallel_for(mode_jobs.size(), run_mode);
  } else {
    for (std::size_t k = 0; k < mode_jobs.size(); ++k) run_mode(k);
  }

  // Phase 2d (serial, job then mode order): collect the fresh results,
  // insert each exactly once — by its owning job, so both stores' FIFO
  // orders match the interleaved schedule-then-evaluation inserts a
  // one-at-a-time run would have performed — then assemble the cross-mode
  // aggregations and price the fitness.
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    JobState& st = states[j];
    for (std::size_t m = 0; m < n_modes; ++m) {
      const std::size_t k = st.pending[m];
      if (k == kNoJob) continue;
      st.modes[m] = fresh[k];
      if (mode_jobs[k].job == j) {
        if (mode_jobs[k].cached_schedule == nullptr)
          mode_cache_.insert_schedule(mode_jobs[k].skey, built[k]);
        mode_cache_.insert(st.keys[m], fresh[k]);
      }
    }
    results[j] = finish_fitness(
        evaluator_.assemble(st.mapping, st.cores, std::move(st.modes)));
  }
}

void MappingGa::evaluate(Individual& ind) {
  const std::vector<Individual*> batch{&ind};
  evaluate_batch(batch);
}

double MappingGa::population_diversity() const {
  // Sampled mean pairwise Hamming fraction (full O(n²) is unnecessary).
  if (population_.size() < 2) return 0.0;
  double total = 0.0;
  int samples = 0;
  const std::size_t n = population_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = (i + 1 + i / 2) % n;
    if (i == j) continue;
    total += hamming_fraction(population_[i].genome, population_[j].genome);
    ++samples;
  }
  return samples ? total / samples : 0.0;
}

namespace {

SnapshotIndividual snapshot_individual(double fitness, double violation,
                                       double power_true, bool evaluated,
                                       bool area_inf, bool timing_inf,
                                       bool transition_inf,
                                       const Genome& genome) {
  SnapshotIndividual s;
  s.genome = genome;
  s.fitness = fitness;
  s.violation = violation;
  s.power_true = power_true;
  s.evaluated = evaluated;
  s.area_infeasible = area_inf;
  s.timing_infeasible = timing_inf;
  s.transition_infeasible = transition_inf;
  return s;
}

}  // namespace

std::uint64_t MappingGa::state_fingerprint() const {
  // Everything that shapes the trajectory; num_threads is deliberately
  // excluded (evaluation is bit-identical for any thread count).
  Fnv1a64 h;
  h.add(seed_);
  h.add(options_.population_size)
      .add(options_.max_generations)
      .add(options_.stagnation_limit)
      .add(options_.diversity_floor)
      .add(options_.immigrant_fraction)
      .add(options_.replacement_fraction)
      .add(options_.gene_mutation_rate)
      .add(options_.tournament_size)
      .add(options_.ranking_pressure)
      .add(options_.elite_count)
      .add(options_.seed_heuristic_individuals)
      .add(options_.final_hill_climb_passes)
      .add(options_.final_two_opt_max_genes)
      .add(options_.memoize_evaluations)
      .add(options_.memoize_cache_capacity)
      .add(options_.memoize_mode_evaluations)
      .add(options_.mode_cache_capacity)
      .add(options_.shutdown_improvement_rate)
      .add(options_.infeasibility_trigger)
      .add(options_.improvement_sweep_fraction)
      .add(static_cast<int>(options_.rng))
      .add(options_.rng_stream);
  h.add(fitness_params_.area_weight)
      .add(fitness_params_.transition_weight)
      .add(fitness_params_.timing_weight);
  h.add(alloc_options_.allocate_parallel_cores)
      .add(alloc_options_.mobility_threshold);
  const EvaluationOptions& eval = evaluator_.options();
  h.add(eval.use_dvs)
      .add(static_cast<int>(eval.scheduling_policy))
      .add(eval.dvs.max_iterations_per_node)
      .add(eval.dvs.step_fraction)
      .add(eval.dvs.min_relative_gain)
      .add(eval.dvs.discrete_voltages)
      .add(eval.dvs.scale_hardware);
  // Reference power (null or `paper`) adds nothing — pre-power-registry
  // checkpoints stay resumable; other backends fence the trajectory.
  if (eval.power != nullptr && !eval.power->is_reference_model())
    h.add(eval.power->fingerprint());
  for (double w : evaluator_.optimisation_weights()) h.add(w);
  h.add(codec_.genome_length());
  for (std::size_t g = 0; g < codec_.genome_length(); ++g)
    h.add(codec_.candidates(g).size());
  return h.digest();
}

GaSnapshot MappingGa::snapshot(const LoopState& st) const {
  const Individual& best = st.best;
  GaSnapshot s;
  s.fingerprint = state_fingerprint();
  s.next_generation = st.generation;
  s.stagnation = st.stagnation;
  s.converged = st.converged;
  s.area_infeasible_streak = st.area_infeasible_streak;
  s.timing_infeasible_streak = st.timing_infeasible_streak;
  s.transition_infeasible_streak = st.transition_infeasible_streak;
  s.evaluations = evaluations_;
  s.cache_hits = cache_hits_;
  s.cache_lookups = cache_lookups_;
  s.elapsed_seconds = loop_elapsed(st);
  s.rng_state = rng_.state();
  s.has_best = best.evaluated;
  s.best = snapshot_individual(best.fitness, best.violation, best.power_true,
                               best.evaluated, best.area_infeasible,
                               best.timing_infeasible,
                               best.transition_infeasible, best.genome);
  s.population.reserve(population_.size());
  for (const Individual& ind : population_)
    s.population.push_back(snapshot_individual(
        ind.fitness, ind.violation, ind.power_true, ind.evaluated,
        ind.area_infeasible, ind.timing_infeasible, ind.transition_infeasible,
        ind.genome));
  // Cache entries in insertion order so FIFO eviction replays identically.
  s.cache.reserve(cache_order_.size());
  for (const Genome& genome : cache_order_) {
    const CachedFitness& c = cache_.at(genome);
    s.cache.push_back(snapshot_individual(
        c.fitness, c.violation, c.power_true, /*evaluated=*/true,
        c.area_infeasible, c.timing_infeasible, c.transition_infeasible,
        genome));
  }
  // The per-mode memo travels too (insertion order again): its hit/lookup
  // counters are part of the reported statistics, and replaying the warm
  // cache keeps a resumed run's wall clock — not just its results — close
  // to the uninterrupted run's.
  s.mode_cache = mode_cache_.entries();
  s.mode_cache_hits = mode_cache_.hits();
  s.mode_cache_lookups = mode_cache_.lookups();
  s.schedule_cache = mode_cache_.schedule_entries();
  s.schedule_cache_hits = mode_cache_.schedule_hits();
  s.schedule_cache_lookups = mode_cache_.schedule_lookups();
  return s;
}

void MappingGa::restore(const GaSnapshot& snapshot) {
  if (snapshot.fingerprint != state_fingerprint())
    throw CheckpointError(
        "fingerprint mismatch: the checkpoint was written by a run with a "
        "different seed, options, or system");
  if (snapshot.population.size() !=
      static_cast<std::size_t>(options_.population_size))
    throw CheckpointError("population size mismatch");
  restored_ = std::make_unique<GaSnapshot>(snapshot);
}

Genome MappingGa::software_seed_genome() const {
  Genome genome(codec_.genome_length(), 0);
  for (std::size_t g = 0; g < codec_.genome_length(); ++g) {
    const auto& cands = codec_.candidates(g);
    const ModeId mode = codec_.mode_of_gene(g);
    const TaskTypeId type =
        system_.omsm.mode(mode).graph.task(codec_.task_of_gene(g)).type;
    double best_energy = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < cands.size(); ++c) {
      if (!is_software(system_.arch.pe(cands[c]).kind)) continue;
      const double e = system_.tech.require(type, cands[c]).energy();
      if (e < best_energy) {
        best_energy = e;
        genome[g] = static_cast<std::uint16_t>(c);
      }
    }
    // Types without any software implementation stay on candidate 0.
  }
  return genome;
}

Genome MappingGa::knapsack_seed_genome(std::vector<double> mode_weights) const {
  std::vector<double> weights = mode_weights.empty()
                                    ? evaluator_.optimisation_weights()
                                    : std::move(mode_weights);
  {
    double total = 0.0;
    for (double w : weights) total += w;
    if (total > 0.0)
      for (double& w : weights) w /= total;
  }
  Genome genome = software_seed_genome();

  // Cheapest software energy per (mode-independent) type, as the baseline
  // each hardware core competes against.
  auto sw_energy = [&](TaskTypeId type) {
    double best = std::numeric_limits<double>::infinity();
    for (PeId p : system_.arch.pe_ids()) {
      if (!is_software(system_.arch.pe(p).kind)) continue;
      if (!system_.tech.supports(type, p)) continue;
      best = std::min(best, system_.tech.require(type, p).energy());
    }
    return best;
  };

  // Per-mode use count of every type.
  const std::size_t n_modes = system_.omsm.mode_count();
  const std::size_t n_types = system_.tech.type_count();
  std::vector<std::vector<std::size_t>> uses(
      n_modes, std::vector<std::size_t>(n_types, 0));
  for (std::size_t m = 0; m < n_modes; ++m)
    for (const Task& task :
         system_.omsm.mode(ModeId{static_cast<ModeId::value_type>(m)})
             .graph.tasks())
      ++uses[m][task.type.index()];

  // Weighted power saving of implementing `type` on hardware PE `p` for
  // the mode subset `m` (or all modes when m == npos):
  // Σ_m w_m · uses_m · (E_sw − E_hw) / period_m.
  constexpr std::size_t kAllModes = static_cast<std::size_t>(-1);
  auto weighted_saving = [&](TaskTypeId type, PeId p, std::size_t only_mode) {
    const double base = sw_energy(type);
    const Implementation& impl = system_.tech.require(type, p);
    double saving = 0.0;
    for (std::size_t m = 0; m < n_modes; ++m) {
      if (only_mode != kAllModes && m != only_mode) continue;
      if (uses[m][type.index()] == 0) continue;
      const Mode& mode =
          system_.omsm.mode(ModeId{static_cast<ModeId::value_type>(m)});
      const double delta =
          std::isfinite(base) ? base - impl.energy() : impl.energy();
      saving += weights[m] * static_cast<double>(uses[m][type.index()]) *
                delta / mode.period;
    }
    return saving;
  };

  struct CoreChoice {
    TaskTypeId type;
    PeId pe;
    std::size_t mode = 0;  // kAllModes for ASIC placements
    double saving = 0.0;   // watts
    double area = 0.0;
  };
  auto by_density = [](const CoreChoice& a, const CoreChoice& b) {
    return a.saving / a.area > b.saving / b.area;
  };

  std::vector<double> remaining(system_.arch.pe_count(), 0.0);
  for (PeId p : system_.arch.pe_ids())
    remaining[p.index()] = system_.arch.pe(p).area_capacity;

  // ---- Pass 1: ASICs (static silicon — one placement serves all modes).
  std::vector<CoreChoice> asic_choices;
  for (std::size_t t = 0; t < n_types; ++t) {
    const TaskTypeId type{static_cast<TaskTypeId::value_type>(t)};
    for (PeId p : system_.arch.pe_ids()) {
      if (system_.arch.pe(p).kind != PeKind::kAsic) continue;
      if (!system_.tech.supports(type, p)) continue;
      const double area = system_.tech.require(type, p).area;
      const double saving = weighted_saving(type, p, kAllModes);
      if (saving > 0.0 && area > 0.0)
        asic_choices.push_back({type, p, kAllModes, saving, area});
    }
  }
  std::sort(asic_choices.begin(), asic_choices.end(), by_density);
  std::vector<PeId> placed(n_types, PeId::invalid());
  for (const CoreChoice& c : asic_choices) {
    if (placed[c.type.index()].valid()) continue;
    if (remaining[c.pe.index()] < c.area) continue;
    remaining[c.pe.index()] -= c.area;
    placed[c.type.index()] = c.pe;
  }

  // ---- Pass 2: FPGAs (reconfigurable — independent per-mode budgets).
  std::vector<std::vector<PeId>> placed_fpga(
      n_modes, std::vector<PeId>(n_types, PeId::invalid()));
  std::vector<CoreChoice> fpga_choices;
  for (std::size_t t = 0; t < n_types; ++t) {
    const TaskTypeId type{static_cast<TaskTypeId::value_type>(t)};
    if (placed[t].valid()) continue;  // already covered by an ASIC
    for (PeId p : system_.arch.pe_ids()) {
      if (system_.arch.pe(p).kind != PeKind::kFpga) continue;
      if (!system_.tech.supports(type, p)) continue;
      const double area = system_.tech.require(type, p).area;
      for (std::size_t m = 0; m < n_modes; ++m) {
        if (uses[m][t] == 0) continue;
        const double saving = weighted_saving(type, p, m);
        if (saving > 0.0 && area > 0.0)
          fpga_choices.push_back({type, p, m, saving, area});
      }
    }
  }
  std::sort(fpga_choices.begin(), fpga_choices.end(), by_density);
  // Per-mode budgets: the free area, additionally capped by the tightest
  // incoming transition-time limit (a full reconfiguration into the mode
  // must stay below t_T^max; resident cores would relax this, which the
  // GA can discover later).
  std::vector<std::vector<double>> remaining_fpga(
      n_modes, std::vector<double>(system_.arch.pe_count(), 0.0));
  for (std::size_t m = 0; m < n_modes; ++m) {
    double tightest = std::numeric_limits<double>::infinity();
    for (const ModeTransition& tr : system_.omsm.transitions())
      if (tr.to.index() == m)
        tightest = std::min(tightest, tr.max_transition_time);
    for (PeId p : system_.arch.pe_ids()) {
      double budget = remaining[p.index()];
      const Pe& pe = system_.arch.pe(p);
      if (pe.kind == PeKind::kFpga && std::isfinite(tightest))
        budget = std::min(budget, tightest * pe.reconfig_bandwidth);
      remaining_fpga[m][p.index()] = budget;
    }
  }
  for (const CoreChoice& c : fpga_choices) {
    if (placed_fpga[c.mode][c.type.index()].valid()) continue;
    if (remaining_fpga[c.mode][c.pe.index()] < c.area) continue;
    remaining_fpga[c.mode][c.pe.index()] -= c.area;
    placed_fpga[c.mode][c.type.index()] = c.pe;
  }

  for (std::size_t g = 0; g < codec_.genome_length(); ++g) {
    const ModeId mode = codec_.mode_of_gene(g);
    const TaskTypeId type =
        system_.omsm.mode(mode).graph.task(codec_.task_of_gene(g)).type;
    PeId target = placed[type.index()];
    if (!target.valid()) target = placed_fpga[mode.index()][type.index()];
    if (target.valid()) codec_.set_pe(genome, g, target);
  }
  return genome;
}

namespace {

MappingGa::Individual individual_from_snapshot(const SnapshotIndividual& s) {
  MappingGa::Individual ind;
  ind.genome = s.genome;
  ind.fitness = s.fitness;
  ind.violation = s.violation;
  ind.power_true = s.power_true;
  ind.evaluated = s.evaluated;
  ind.area_infeasible = s.area_infeasible;
  ind.timing_infeasible = s.timing_infeasible;
  ind.transition_infeasible = s.transition_infeasible;
  return ind;
}

}  // namespace

double MappingGa::loop_elapsed(const LoopState& st) const {
  // Wall-clock seconds spent before a resumed checkpoint count too, so
  // budgets and the reported elapsed time span interruptions.
  return st.elapsed_base +
         std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       st.t_begin)
             .count();
}

const MappingGa::Individual& MappingGa::population_at(int slot) const {
  return population_[static_cast<std::size_t>(slot)];
}

void MappingGa::install_individual(int slot, Individual migrant) {
  population_[static_cast<std::size_t>(slot)] = std::move(migrant);
}

void MappingGa::start_loop(LoopState& st) {
  st = LoopState{};
  st.t_begin = std::chrono::steady_clock::now();
  st.best.fitness = std::numeric_limits<double>::infinity();
  st.best.violation = std::numeric_limits<double>::infinity();

  if (restored_) {
    // Resume: replay the exact state entering `next_generation` — the
    // population, the best-so-far, the RNG stream, every counter, and the
    // memo cache in insertion order (so FIFO eviction continues where it
    // left off). From here the run is bit-identical to one that was never
    // interrupted.
    const GaSnapshot& s = *restored_;
    population_.clear();
    population_.reserve(s.population.size());
    for (const SnapshotIndividual& ind : s.population)
      population_.push_back(individual_from_snapshot(ind));
    if (s.has_best) st.best = individual_from_snapshot(s.best);
    st.stagnation = s.stagnation;
    st.converged = s.converged;
    st.area_infeasible_streak = s.area_infeasible_streak;
    st.timing_infeasible_streak = s.timing_infeasible_streak;
    st.transition_infeasible_streak = s.transition_infeasible_streak;
    evaluations_ = s.evaluations;
    cache_hits_ = s.cache_hits;
    cache_lookups_ = s.cache_lookups;
    st.elapsed_base = s.elapsed_seconds;
    rng_.set_state(s.rng_state);
    cache_.clear();
    cache_order_.clear();
    for (const SnapshotIndividual& entry : s.cache)
      cache_insert(entry.genome,
                   CachedFitness{entry.fitness, entry.violation,
                                 entry.area_infeasible, entry.timing_infeasible,
                                 entry.transition_infeasible,
                                 entry.power_true});
    mode_cache_.restore(s.mode_cache, s.mode_cache_hits,
                        s.mode_cache_lookups);
    mode_cache_.restore_schedules(s.schedule_cache, s.schedule_cache_hits,
                                  s.schedule_cache_lookups);
    st.start_generation = s.next_generation;
    st.generation = s.next_generation;
    restored_.reset();
  } else {
    // Line 01: random initial population, optionally with two deterministic
    // heuristic seeds that give both comparison approaches the same footing.
    population_.clear();
    population_.reserve(static_cast<std::size_t>(options_.population_size));
    for (int i = 0; i < options_.population_size; ++i)
      population_.push_back(Individual{codec_.random_genome(rng_)});
    if (options_.seed_heuristic_individuals && options_.population_size >= 4) {
      // Greedy seeds of the GA's own objective and of the uniform objective,
      // plus the all-software mapping. The uniform seed carries no mode-
      // probability information, so the probability-neglecting baseline
      // stays honest while both runs get equally strong starting points.
      population_[0].genome = knapsack_seed_genome();
      population_[1].genome = knapsack_seed_genome(
          std::vector<double>(system_.omsm.mode_count(), 1.0));
      population_[2].genome = software_seed_genome();
    }
  }
}

bool MappingGa::step_generation(
    LoopState& st, const std::function<void(const GaProgress&)>& observer) {
  if (st.converged || st.generation >= options_.max_generations) return false;

  const int n = options_.population_size;
  const int elite = std::min(options_.elite_count, n);

  {
    // Lines 03–14: estimate objectives and assign fitness. The whole
    // unevaluated cohort is batched so cache misses fan out across the
    // worker pool (bit-identical to the serial path, see evaluate_batch).
    std::vector<Individual*> unevaluated;
    for (Individual& ind : population_)
      if (!ind.evaluated) unevaluated.push_back(&ind);
    evaluate_batch(unevaluated);

    // Line 15: rank individuals (best first), feasibility-first.
    std::sort(population_.begin(), population_.end(),
              [](const Individual& a, const Individual& b) {
                return candidate_better(a.violation, a.fitness, b.violation,
                                        b.fitness);
              });

    const Individual& front = population_.front();
    if (candidate_better(front.violation, front.fitness, st.best.violation,
                         st.best.fitness * (1.0 - 1e-9))) {
      st.best = front;
      st.stagnation = 0;
    } else {
      ++st.stagnation;
    }

    const double diversity = population_diversity();
    if (observer)
      observer(GaProgress{st.generation, st.best.fitness, st.best.power_true,
                          diversity, evaluations_, cache_hits_,
                          cache_lookups_, mode_cache_.hits(),
                          mode_cache_.lookups()});

    // Line 02: convergence criterion — stagnation, optionally accelerated
    // by a collapsed population. Latched in `converged` (and persisted in
    // checkpoints): the diversity term is measured on the just-evaluated
    // population, which the breeding below overwrites, so the decision
    // could not be re-derived from a later snapshot.
    if (st.stagnation >= options_.stagnation_limit ||
        (options_.diversity_floor > 0.0 &&
         diversity < options_.diversity_floor &&
         st.stagnation >= options_.stagnation_limit / 2)) {
      st.converged = true;
      return false;
    }

    // Linear-ranking selection weights (position 0 = best).
    const double s = options_.ranking_pressure;
    std::vector<double> rank_weight(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      rank_weight[static_cast<std::size_t>(i)] =
          s - 2.0 * (s - 1.0) * static_cast<double>(i) /
                  std::max(1, n - 1);

    auto tournament_pick = [&]() {
      std::size_t winner = rng_.pick_index(population_.size());
      for (int k = 1; k < options_.tournament_size; ++k) {
        const std::size_t challenger = rng_.pick_index(population_.size());
        if (rank_weight[challenger] > rank_weight[winner])
          winner = challenger;
      }
      return winner;
    };

    // Lines 16–18: mating, two-point crossover, offspring insertion.
    // Clamped to the non-elite range so replacement can never clobber the
    // elite slots (including the incumbent best at slot 0).
    const int offspring_count = ga_detail::clamped_offspring_count(
        options_.replacement_fraction, n, elite);
    std::vector<Individual> offspring;
    offspring.reserve(static_cast<std::size_t>(offspring_count));
    const std::size_t genes = codec_.genome_length();
    while (static_cast<int>(offspring.size()) < offspring_count) {
      const Genome& a = population_[tournament_pick()].genome;
      const Genome& b = population_[tournament_pick()].genome;
      Genome child1 = a;
      Genome child2 = b;
      if (genes >= 2) {
        std::size_t cut1 = rng_.pick_index(genes);
        std::size_t cut2 = rng_.pick_index(genes);
        if (cut1 > cut2) std::swap(cut1, cut2);
        for (std::size_t g = cut1; g < cut2; ++g) {
          child1[g] = b[g];
          child2[g] = a[g];
        }
      }
      offspring.push_back(Individual{std::move(child1)});
      if (static_cast<int>(offspring.size()) < offspring_count)
        offspring.push_back(Individual{std::move(child2)});
    }

    // Random gene mutation on offspring.
    for (Individual& ind : offspring)
      for (std::size_t g = 0; g < genes; ++g)
        if (rng_.chance(options_.gene_mutation_rate))
          ind.genome[g] = static_cast<std::uint16_t>(
              rng_.pick_index(codec_.candidates(g).size()));

    // Replace the ranked-worst individuals.
    for (int i = 0; i < offspring_count; ++i)
      population_[static_cast<std::size_t>(n - 1 - i)] =
          std::move(offspring[static_cast<std::size_t>(i)]);

    // Random immigrants: keep exploration alive after the population
    // concentrates around the incumbent. immigrant_count already caps the
    // request by the free non-elite slots (slot == elite is the first
    // legal one), so every slot here is insertable.
    const int immigrants = ga_detail::immigrant_count(
        options_.immigrant_fraction, n, offspring_count, elite);
    for (int i = 0; i < immigrants; ++i) {
      const int slot = ga_detail::immigrant_slot(n, offspring_count, i);
      population_[static_cast<std::size_t>(slot)] =
          Individual{codec_.random_genome(rng_)};
    }

    // Lines 19–22: improvement mutations (never touching the elite).
    auto non_elite_index = [&]() {
      return static_cast<std::size_t>(
          elite + static_cast<int>(rng_.pick_index(
                      static_cast<std::size_t>(n - elite))));
    };

    // Shut-down improvement on randomly picked individuals (2%).
    for (int i = elite; i < n; ++i) {
      if (!rng_.chance(options_.shutdown_improvement_rate)) continue;
      Individual& ind = population_[static_cast<std::size_t>(i)];
      if (shutdown_improvement(ind.genome, codec_, system_, rng_))
        ind.evaluated = false;
    }

    // Stagnation-triggered sweeps, driven by whole-population
    // infeasibility streaks.
    const bool all_area = std::all_of(
        population_.begin(), population_.end(),
        [](const Individual& i) { return !i.evaluated || i.area_infeasible; });
    const bool all_timing =
        std::all_of(population_.begin(), population_.end(),
                    [](const Individual& i) {
                      return !i.evaluated || i.timing_infeasible;
                    });
    const bool all_transition =
        std::all_of(population_.begin(), population_.end(),
                    [](const Individual& i) {
                      return !i.evaluated || i.transition_infeasible;
                    });
    st.area_infeasible_streak = all_area ? st.area_infeasible_streak + 1 : 0;
    st.timing_infeasible_streak =
        all_timing ? st.timing_infeasible_streak + 1 : 0;
    st.transition_infeasible_streak =
        all_transition ? st.transition_infeasible_streak + 1 : 0;

    const int sweep = std::max(
        1, static_cast<int>(options_.improvement_sweep_fraction * n));
    if (st.area_infeasible_streak >= options_.infeasibility_trigger) {
      for (int i = 0; i < sweep; ++i) {
        Individual& ind = population_[non_elite_index()];
        if (area_improvement(ind.genome, codec_, system_, rng_))
          ind.evaluated = false;
      }
      st.area_infeasible_streak = 0;
    }
    if (st.timing_infeasible_streak >= options_.infeasibility_trigger) {
      for (int i = 0; i < sweep; ++i) {
        Individual& ind = population_[non_elite_index()];
        if (timing_improvement(ind.genome, codec_, system_, rng_))
          ind.evaluated = false;
      }
      st.timing_infeasible_streak = 0;
    }
    if (st.transition_infeasible_streak >= options_.infeasibility_trigger) {
      for (int i = 0; i < sweep; ++i) {
        Individual& ind = population_[non_elite_index()];
        if (transition_improvement(ind.genome, codec_, system_, rng_))
          ind.evaluated = false;
      }
      st.transition_infeasible_streak = 0;
    }
  }

  ++st.generation;
  return true;
}

void MappingGa::finish_loop(LoopState& st, RunControl* control) {
  // Sequential acceptance over a pre-evaluated trial batch. All trials
  // differ from `best` only at the probed gene(s), so accepting an
  // earlier trial never changes what a later trial's genome would have
  // been — evaluating the whole batch up front (in parallel) and merging
  // in order is exactly the one-at-a-time algorithm.
  auto merge_trials = [&](std::vector<Individual>& trials, bool& improved) {
    std::vector<Individual*> batch;
    batch.reserve(trials.size());
    for (Individual& trial : trials) batch.push_back(&trial);
    evaluate_batch(batch);
    for (Individual& trial : trials) {
      if (candidate_better(trial.violation, trial.fitness, st.best.violation,
                           st.best.fitness * (1.0 - 1e-12))) {
        st.best = trial;
        improved = true;
      }
    }
  };

  // A stop before the first evaluation still owes the caller a result:
  // price the strongest seed (slot 0 holds the objective-aware greedy
  // when heuristic seeding is on) so even a zero-budget run returns a
  // well-formed, fully evaluated candidate.
  if (!st.best.evaluated && !population_.empty()) {
    Individual fallback{population_.front().genome};
    evaluate(fallback);
    st.best = fallback;
  }

  // The polish phases honour cancellation between trial batches: a
  // partial run skips them entirely, a cancel arriving mid-polish keeps
  // the best individual accepted so far.
  auto polish_interrupted = [&] {
    if (st.partial) return true;
    if (control && control->should_stop(loop_elapsed(st))) {
      st.partial = true;
      st.stop_reason = control->budget_exhausted(loop_elapsed(st))
                           ? StopReason::kBudgetExhausted
                           : StopReason::kCancelled;
    }
    return st.partial;
  };

  // Memetic polish: single-gene hill climbing on the best individual.
  if (options_.final_hill_climb_passes > 0 && st.best.evaluated &&
      !polish_interrupted()) {
    std::vector<std::size_t> order(codec_.genome_length());
    for (std::size_t g = 0; g < order.size(); ++g) order[g] = g;
    for (int pass = 0;
         pass < options_.final_hill_climb_passes && !polish_interrupted();
         ++pass) {
      bool improved = false;
      rng_.shuffle(order);
      for (std::size_t g : order) {
        if (polish_interrupted()) break;
        const std::size_t cands = codec_.candidates(g).size();
        if (cands < 2) continue;
        const std::uint16_t original = st.best.genome[g];
        std::vector<Individual> trials;
        trials.reserve(cands - 1);
        for (std::uint16_t c = 0; c < cands; ++c) {
          if (c == original) continue;
          Individual trial = st.best;
          trial.genome[g] = c;
          trial.evaluated = false;
          trials.push_back(std::move(trial));
        }
        merge_trials(trials, improved);
      }
      if (!improved) break;
    }
  }

  // 2-opt polish on small genomes: coordinated two-gene moves (e.g. swap
  // one core allocation for another that only fits after freeing area).
  // One gene pair's candidate grid forms one parallel batch.
  if (st.best.evaluated &&
      static_cast<int>(codec_.genome_length()) <=
          options_.final_two_opt_max_genes &&
      !polish_interrupted()) {
    bool improved = true;
    for (int round = 0; improved && round < 3 && !polish_interrupted();
         ++round) {
      improved = false;
      for (std::size_t g1 = 0; g1 < codec_.genome_length(); ++g1) {
        if (polish_interrupted()) break;
        for (std::size_t g2 = g1 + 1; g2 < codec_.genome_length(); ++g2) {
          const std::size_t c1n = codec_.candidates(g1).size();
          const std::size_t c2n = codec_.candidates(g2).size();
          std::vector<Individual> trials;
          trials.reserve(c1n * c2n - 1);
          for (std::uint16_t c1 = 0; c1 < c1n; ++c1) {
            for (std::uint16_t c2 = 0; c2 < c2n; ++c2) {
              if (c1 == st.best.genome[g1] && c2 == st.best.genome[g2])
                continue;
              Individual trial = st.best;
              trial.genome[g1] = c1;
              trial.genome[g2] = c2;
              trial.evaluated = false;
              trials.push_back(std::move(trial));
            }
          }
          merge_trials(trials, improved);
        }
      }
    }
  }
}

SynthesisResult MappingGa::harvest(const LoopState& st) {
  // Assemble the result from the best individual seen.
  SynthesisResult result;
  result.mapping = codec_.decode(st.best.genome);
  result.cores = build_core_allocation(system_, result.mapping, alloc_options_);
  result.evaluation = evaluator_.evaluate(result.mapping, result.cores);
  result.fitness = st.best.fitness;
  result.generations = st.generation;
  result.evaluations = evaluations_;
  result.cache_hits = cache_hits_;
  result.cache_lookups = cache_lookups_;
  result.mode_cache_hits = mode_cache_.hits();
  result.mode_cache_lookups = mode_cache_.lookups();
  result.schedule_cache_hits = mode_cache_.schedule_hits();
  result.schedule_cache_lookups = mode_cache_.schedule_lookups();
  result.elapsed_seconds = loop_elapsed(st);
  result.partial = st.partial;
  result.stop_reason = st.stop_reason;
  // Paths that set `partial` directly (e.g. the island driver's shared
  // stop flag) still owe the caller a typed reason.
  if (result.partial && result.stop_reason == StopReason::kNone)
    result.stop_reason = StopReason::kCancelled;
  return result;
}

SynthesisResult MappingGa::run(
    const std::function<void(const GaProgress&)>& observer,
    RunControl* control) {
  LoopState st;
  start_loop(st);

  while (st.generation < options_.max_generations) {
    // Generation boundary: the state right here is exactly what a
    // checkpoint captures, so a cooperative stop both persists it (when
    // checkpointing is on) and degrades gracefully to the best-so-far.
    if (control && control->should_stop(loop_elapsed(st))) {
      if (control->checkpointing_enabled())
        control->write_checkpoint(snapshot(st));
      st.partial = true;
      st.stop_reason = control->budget_exhausted(loop_elapsed(st))
                           ? StopReason::kBudgetExhausted
                           : StopReason::kCancelled;
      break;
    }

    if (!step_generation(st, observer)) break;

    // Periodic checkpoint at the end of the generation body — the state
    // here is "entering st.generation", the same shape the cooperative
    // stop above persists (step_generation already advanced the counter).
    if (control && control->checkpoint_due(st.generation - 1))
      control->write_checkpoint(snapshot(st));
  }

  finish_loop(st, control);
  return harvest(st);
}

}  // namespace mmsyn
