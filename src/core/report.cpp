#include "core/report.hpp"

#include <cstdarg>
#include <cstdio>
#include <sstream>

#include "dvs/dvs_graph.hpp"
#include "dvs/voltage_schedule.hpp"
#include "model/system.hpp"
#include "sched/gantt.hpp"
#include "sched/list_scheduler.hpp"

namespace mmsyn {
namespace {

void append_line(std::ostringstream& os, const char* format, ...) {
  char buffer[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof buffer, format, args);
  va_end(args);
  os << buffer << '\n';
}

}  // namespace

std::string implementation_report(const System& system,
                                  const SynthesisResult& result,
                                  const ReportOptions& options) {
  std::ostringstream os;
  const Evaluation& eval = result.evaluation;

  append_line(os, "Implementation report: %s", system.name.c_str());
  if (options.include_timing)
    append_line(os,
                "  average power %.4f mW | feasible=%s | %d generations, %ld "
                "evaluations, %.2f s",
                eval.avg_power_true * 1e3, eval.feasible() ? "yes" : "NO",
                result.generations, result.evaluations,
                result.elapsed_seconds);
  else
    append_line(os,
                "  average power %.4f mW | feasible=%s | %d generations, %ld "
                "evaluations",
                eval.avg_power_true * 1e3, eval.feasible() ? "yes" : "NO",
                result.generations, result.evaluations);
  if (result.partial)
    append_line(os,
                "  PARTIAL RESULT: the run was stopped early (cancellation "
                "or time budget) before convergence");
  if (result.cache_lookups > 0)
    append_line(os, "  fitness memo: %ld/%ld hits (%.1f%% hit rate)",
                result.cache_hits, result.cache_lookups,
                100.0 * static_cast<double>(result.cache_hits) /
                    static_cast<double>(result.cache_lookups));

  for (std::size_t m = 0; m < system.omsm.mode_count(); ++m) {
    const ModeId mode_id{static_cast<ModeId::value_type>(m)};
    const Mode& mode = system.omsm.mode(mode_id);
    const ModeEvaluation& me = eval.modes[m];
    append_line(os,
                "mode '%s': Psi=%.3f period=%.3f ms | dyn %.4f mW + static "
                "%.4f mW | makespan %.3f ms%s",
                mode.name.c_str(), mode.probability, mode.period * 1e3,
                me.dyn_power * 1e3, me.static_power * 1e3, me.makespan * 1e3,
                me.timing_violation > 0 ? " | TIMING VIOLATION" : "");

    // Power-model breakdown. The reference `paper` backend leaves
    // baseline_static_power at exactly 0, so this block never renders for
    // it and paper reports stay byte-identical to pre-registry ones.
    if (me.baseline_static_power != 0.0) {
      if (me.temperature != 0.0)
        append_line(os,
                    "  power model: baseline static %.4f mW | T=%.2f C "
                    "(thermal leakage)",
                    me.baseline_static_power * 1e3, me.temperature);
      else
        append_line(os,
                    "  power model: baseline static %.4f mW | idle saved "
                    "%.4f mJ - wake %.4f mJ per period (dpm)",
                    me.baseline_static_power * 1e3,
                    me.idle_energy_saved * 1e3, me.wake_energy * 1e3);
    }

    // Task mapping M_τ.
    os << "  mapping:";
    for (std::size_t t = 0; t < mode.graph.task_count(); ++t) {
      if (t % 6 == 0) os << "\n    ";
      const TaskId id{static_cast<TaskId::value_type>(t)};
      os << mode.graph.task(id).name << "->"
         << system.arch.pe(result.mapping.modes[m].task_to_pe[t]).name
         << "  ";
    }
    os << "\n";

    // Core allocation.
    for (PeId p : system.arch.pe_ids()) {
      const CoreSet& cores = result.cores.cores(mode_id, p);
      if (cores.empty()) continue;
      os << "  cores on " << system.arch.pe(p).name << ":";
      for (const auto& [type, count] : cores.entries())
        os << " " << system.tech.type_name(type) << "x" << count;
      os << "\n";
    }

    // Shut-down analysis.
    os << "  powered:";
    for (std::size_t p = 0; p < system.arch.pe_count(); ++p)
      if (me.pe_active[p])
        os << " " << system.arch.pe(PeId{static_cast<PeId::value_type>(p)}).name;
    for (std::size_t c = 0; c < system.arch.cl_count(); ++c)
      if (me.cl_active[c])
        os << " " << system.arch.cl(ClId{static_cast<ClId::value_type>(c)}).name;
    os << "\n";

    if (options.include_gantt && me.schedule) {
      GanttOptions gantt;
      gantt.width = options.gantt_width;
      os << render_gantt(mode, *me.schedule, result.mapping.modes[m],
                         system.arch, gantt);
    }
    if (options.include_voltage_schedules && me.schedule) {
      const DvsGraph graph =
          build_dvs_graph(mode, *me.schedule, result.mapping.modes[m],
                          system.arch, system.tech);
      const PvDvsResult dvs = run_pv_dvs(graph, system.arch);
      os << "  voltage schedule (nominal " << dvs.nominal_energy * 1e3
         << " mJ -> " << dvs.total_energy * 1e3 << " mJ):\n";
      std::istringstream lines(
          derive_voltage_schedule(graph, dvs, system.arch)
              .to_string(system.arch));
      std::string line;
      while (std::getline(lines, line)) os << "    " << line << "\n";
    }
  }

  // Transition report.
  for (std::size_t t = 0; t < system.omsm.transition_count(); ++t) {
    if (eval.transition_times[t] <= 0.0) continue;
    const ModeTransition& tr = system.omsm.transition(
        TransitionId{static_cast<TransitionId::value_type>(t)});
    append_line(os, "transition %s -> %s: reconfiguration %.3f ms (limit %.3f ms)%s",
                system.omsm.mode(tr.from).name.c_str(),
                system.omsm.mode(tr.to).name.c_str(),
                eval.transition_times[t] * 1e3,
                tr.max_transition_time * 1e3,
                eval.transition_violations[t] > 0 ? " VIOLATED" : "");
  }
  return os.str();
}

}  // namespace mmsyn
