// Mapping fitness F_M (Fig. 4, line 14).
//
//   F_M = p̄ · tp · (1 + w_A · Σ_{π∈P_v} (a_π^U − a_π^max)/(a_π^max · 0.01))
//             · (w_R · Π_{T∈Θ_v} t_T / t_T^max)
//
// where p̄ is the weighted average power (Eq. 1), tp a timing-penalty
// factor, the third factor penalises PEs with area violations (P_v) in
// units of violation percent, and the last factor penalises transitions
// whose reconfiguration time exceeds its limit (Θ_v; factor 1 when the set
// is empty). Lower is better.
#pragma once

#include "energy/evaluator.hpp"

namespace mmsyn {

struct FitnessParams {
  /// Area-penalty weight w_A (per percent of violation).
  double area_weight = 0.05;
  /// Transition-penalty weight w_R (applied once when any violation).
  double transition_weight = 2.0;
  /// Timing-penalty weight: tp = 1 + w_T · weighted timing violation
  /// (violations expressed in fractions of the mode period).
  double timing_weight = 20.0;
};

/// Computes F_M from an evaluation. Lower is better; strictly positive.
[[nodiscard]] double mapping_fitness(const Evaluation& eval,
                                     const Evaluator& evaluator,
                                     const FitnessParams& params);

/// Normalised total constraint violation (0 == feasible): area violations
/// in fractions of capacity, timing violations in fractions of the period,
/// transition-time violations in fractions of the limit.
[[nodiscard]] double constraint_violation(const Evaluation& eval,
                                          const Evaluator& evaluator);

/// Selection order for the GA and the exhaustive search (Deb's rules):
/// feasible beats infeasible regardless of fitness; two feasible
/// candidates compare by fitness; two infeasible by violation, then
/// fitness. The multiplicative penalties in F_M still provide the
/// gradient inside the infeasible region.
[[nodiscard]] bool candidate_better(double violation_a, double fitness_a,
                                    double violation_b, double fitness_b);

}  // namespace mmsyn
