// Mapping fitness F_M (Fig. 4, line 14).
//
//   F_M = p̄ · tp · (1 + w_A · Σ_{π∈P_v} (a_π^U − a_π^max)/(a_π^max · 0.01))
//             · Π_{T∈Θ_v} (w_R · t_T / t_T^max)
//
// where p̄ is the weighted average power (Eq. 1), tp a timing-penalty
// factor, the third factor penalises PEs with area violations (P_v) in
// units of violation percent, and the last factor penalises *each*
// transition whose reconfiguration time exceeds its limit (Θ_v) — an
// empty product is 1, so a transition-feasible candidate pays no w_R.
// All factors are finite and strictly positive (zero-capacity PEs and
// zero transition-time limits are guarded), so F_M always ranks. Lower
// is better.
#pragma once

#include "energy/evaluator.hpp"

namespace mmsyn {

struct FitnessParams {
  /// Area-penalty weight w_A (per percent of violation).
  double area_weight = 0.05;
  /// Transition-penalty weight w_R (applied per violating transition, as
  /// the paper's Π_{T∈Θ_v} form demands; 2.0 keeps the Fig. 4 regression
  /// behaviour of the previous apply-once variant on single-violation
  /// candidates, which is the common case on the mul suite).
  double transition_weight = 2.0;
  /// Timing-penalty weight: tp = 1 + w_T · weighted timing violation
  /// (violations expressed in fractions of the mode period, matching
  /// Evaluation::weighted_timing_violation).
  double timing_weight = 20.0;
};

/// Computes F_M from an evaluation. Lower is better; strictly positive.
[[nodiscard]] double mapping_fitness(const Evaluation& eval,
                                     const Evaluator& evaluator,
                                     const FitnessParams& params);

/// Normalised total constraint violation (0 == feasible): area violations
/// in fractions of capacity, timing violations in fractions of the period,
/// transition-time violations in fractions of the limit.
[[nodiscard]] double constraint_violation(const Evaluation& eval,
                                          const Evaluator& evaluator);

/// Selection order for the GA and the exhaustive search (Deb's rules):
/// feasible beats infeasible regardless of fitness; two feasible
/// candidates compare by fitness; two infeasible by violation, then
/// fitness. The multiplicative penalties in F_M still provide the
/// gradient inside the infeasible region.
[[nodiscard]] bool candidate_better(double violation_a, double fitness_a,
                                    double violation_b, double fitness_b);

}  // namespace mmsyn
