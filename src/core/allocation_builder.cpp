#include "core/allocation_builder.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "model/system.hpp"
#include "sched/mobility.hpp"

namespace mmsyn {
namespace {

/// Maximum number of simultaneously running intervals.
int max_concurrency(std::vector<std::pair<double, double>> intervals) {
  std::vector<std::pair<double, int>> events;
  events.reserve(intervals.size() * 2);
  for (const auto& [start, end] : intervals) {
    events.emplace_back(start, +1);
    events.emplace_back(end, -1);
  }
  // Process ends before starts at equal times (back-to-back is sequential).
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;
            });
  int current = 0, best = 0;
  for (const auto& [time, delta] : events) {
    current += delta;
    best = std::max(best, current);
  }
  return best;
}

/// Greedy extra-core addition into `set` (already holding the base cores)
/// until `desired` counts are met or `capacity` is exhausted.
void add_extra_cores(CoreSet& set,
                     const std::map<TaskTypeId, int>& desired,
                     const TechLibrary& tech, PeId pe, double capacity) {
  double used = set.area(tech, pe);
  bool progress = true;
  while (progress) {
    progress = false;
    // Pick the type with the largest remaining deficit whose extra core
    // still fits; ties resolved toward the smaller core.
    TaskTypeId best_type;
    int best_deficit = 0;
    double best_area = 0.0;
    for (const auto& [type, want] : desired) {
      const int deficit = want - set.count_of(type);
      if (deficit <= 0) continue;
      const double area = tech.require(type, pe).area;
      if (used + area > capacity) continue;
      if (deficit > best_deficit ||
          (deficit == best_deficit && area < best_area)) {
        best_type = type;
        best_deficit = deficit;
        best_area = area;
      }
    }
    if (best_deficit > 0) {
      set.add_core(best_type);
      used += best_area;
      progress = true;
    }
  }
}

}  // namespace

CoreAllocation build_core_allocation(const System& system,
                                     const MultiModeMapping& mapping,
                                     const AllocationOptions& options) {
  const Omsm& omsm = system.omsm;
  const Architecture& arch = system.arch;
  const TechLibrary& tech = system.tech;
  const std::size_t n_modes = omsm.mode_count();
  const std::size_t n_pes = arch.pe_count();

  CoreAllocation alloc;
  alloc.per_mode.assign(n_modes, std::vector<CoreSet>(n_pes));

  // Per-mode mobility analysis (Fig. 4 line 04).
  std::vector<MobilityInfo> mobility;
  mobility.reserve(n_modes);
  for (std::size_t m = 0; m < n_modes; ++m) {
    const ModeId mode_id{static_cast<ModeId::value_type>(m)};
    mobility.push_back(compute_mobility(omsm.mode(mode_id), mapping.modes[m],
                                        arch, tech));
  }

  // desired[m][pe] : per-type core demand in mode m on PE pe.
  std::vector<std::vector<std::map<TaskTypeId, int>>> desired(
      n_modes, std::vector<std::map<TaskTypeId, int>>(n_pes));

  for (std::size_t m = 0; m < n_modes; ++m) {
    const ModeId mode_id{static_cast<ModeId::value_type>(m)};
    const Mode& mode = omsm.mode(mode_id);
    const MobilityInfo& mob = mobility[m];
    // Group this mode's hardware tasks by (pe, type).
    std::map<std::pair<PeId, TaskTypeId>, std::vector<std::size_t>> groups;
    for (std::size_t t = 0; t < mode.graph.task_count(); ++t) {
      const PeId pe = mapping.modes[m].task_to_pe[t];
      if (!is_hardware(arch.pe(pe).kind)) continue;
      const TaskId id{static_cast<TaskId::value_type>(t)};
      groups[{pe, mode.graph.task(id).type}].push_back(t);
    }
    for (const auto& [key, tasks] : groups) {
      const auto& [pe, type] = key;
      int demand = 1;
      if (options.allocate_parallel_cores && tasks.size() > 1) {
        // Extra cores pay off only for tasks that can actually overlap and
        // are urgent (low mobility).
        std::vector<std::pair<double, double>> windows;
        const double mobility_cap =
            options.mobility_threshold * mode.period;
        for (std::size_t t : tasks) {
          if (mob.mobility[t] > mobility_cap) continue;
          windows.emplace_back(mob.asap_start[t],
                               mob.asap_start[t] + mob.exec_time[t]);
        }
        demand = std::max(1, max_concurrency(std::move(windows)));
      }
      desired[m][pe.index()][type] = demand;
    }
  }

  for (PeId p : arch.pe_ids()) {
    const Pe& pe = arch.pe(p);
    if (!is_hardware(pe.kind)) continue;

    if (pe.kind == PeKind::kAsic) {
      // Static silicon: one set for all modes, per-type max demand.
      std::map<TaskTypeId, int> merged;
      for (std::size_t m = 0; m < n_modes; ++m)
        for (const auto& [type, want] : desired[m][p.index()])
          merged[type] = std::max(merged[type], want);
      CoreSet set;
      for (const auto& [type, want] : merged) set.set_count(type, 1);
      add_extra_cores(set, merged, tech, p, pe.area_capacity);
      for (std::size_t m = 0; m < n_modes; ++m)
        alloc.per_mode[m][p.index()] = set;
    } else {
      // FPGA: reconfigurable per mode.
      for (std::size_t m = 0; m < n_modes; ++m) {
        CoreSet set;
        for (const auto& [type, want] : desired[m][p.index()])
          set.set_count(type, 1);
        add_extra_cores(set, desired[m][p.index()], tech, p,
                        pe.area_capacity);
        alloc.per_mode[m][p.index()] = std::move(set);
      }
    }
  }
  return alloc;
}

}  // namespace mmsyn
