// Island-model sharding of the mapping GA (DESIGN.md §14).
//
// N islands evolve independent populations as in-process shards, each on
// its own counter-based RNG stream (stream id = rng_streams::island_stream
// of the island index), and exchange their elite on a fixed generation
// cadence through a deterministic ring: island i receives the first
// `migrants` ranked individuals of island i-1 (mod N) into its last
// `migrants` population slots. Migration happens only at synchronous
// generation barriers — every island first advances to the same target
// generation, then the exchange runs serially in island order — so the
// result is a pure function of (seed, island count, migration schedule)
// and never of thread timing.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/ga.hpp"

namespace mmsyn {

class RunControl;
struct IslandSnapshot;

/// Island-topology knobs (the GA itself is configured by GaOptions; every
/// island runs identical options apart from its rng_stream).
struct IslandOptions {
  /// Number of islands; 1 degenerates to the plain single-population GA
  /// (same stream 0, bit-identical trajectory).
  int islands = 1;
  /// Generations between migration barriers.
  int migration_interval = 20;
  /// Elite individuals exchanged per barrier along the ring.
  int migrants = 2;
};

/// The island coordinator. Owns one MappingGa per island and drives their
/// stepping interface: blocks of `migration_interval` generations per
/// island (fanned out over a thread pool), a barrier, a serial migration,
/// repeat. Checkpoints (island containers, format v4) are written at
/// every barrier and on a cooperative stop; resume restores each island
/// and the barrier position, after which the run is bit-identical to one
/// that was never interrupted.
class IslandGa {
public:
  /// Throws std::invalid_argument (with a flag-level actionable message)
  /// when the island topology is inconsistent with the GA options; see
  /// validate().
  IslandGa(const System& system, const Evaluator& evaluator,
           FitnessParams fitness_params, AllocationOptions alloc_options,
           GaOptions ga_options, IslandOptions island_options,
           std::uint64_t seed);
  ~IslandGa();

  /// Validates an island configuration against the GA options it will
  /// run with. Throws std::invalid_argument naming the offending flag and
  /// the fix; returns normally otherwise. Called by the constructor;
  /// exposed so CLI frontends can fail fast before building evaluators.
  static void validate(const GaOptions& ga_options,
                       const IslandOptions& island_options);

  /// Runs all islands to convergence (or to the generation cap, budget,
  /// or cancellation). `observer` is forwarded to island 0 only and may
  /// be invoked from a worker thread. The result is the champion
  /// island's, with evaluation/cache counters summed across islands,
  /// `generations` the maximum over islands, and `elapsed_seconds` the
  /// wall clock of the whole sharded run.
  [[nodiscard]] SynthesisResult run(
      const std::function<void(const GaProgress&)>& observer = {},
      RunControl* control = nullptr);

  /// Restores an island checkpoint so the next run() continues
  /// bit-identically. Throws CheckpointError on any mismatch (island
  /// count, migration schedule, or any per-island GA fingerprint).
  void restore(const IslandSnapshot& snapshot);

  /// Fingerprint of the whole sharded configuration: island count,
  /// migration schedule, and every per-island GA fingerprint (which embed
  /// the seed, the GA options, and the per-island rng_stream).
  [[nodiscard]] std::uint64_t state_fingerprint() const;

  [[nodiscard]] int island_count() const;

  /// Index of the champion island of the last run() (0 before any run).
  [[nodiscard]] int champion_index() const { return champion_; }

  /// The champion island's warm per-mode memo, for the synthesis driver's
  /// final fine-DVS evaluation (see MappingGa::mode_cache). Valid after
  /// run(); island caches are fully partitioned — no island ever reads
  /// another island's memo, so per-island replay stays self-contained.
  [[nodiscard]] ModeEvalCache& champion_mode_cache();

private:
  struct Island;

  [[nodiscard]] IslandSnapshot make_snapshot() const;

  /// One serial ring exchange at a barrier: gather every island's first
  /// `migrants` ranked individuals, then install them over the last
  /// `migrants` slots of the ring successor, in island order. Islands
  /// that already finished (converged or at the cap) still emigrate but
  /// receive nothing — their loop will never run again.
  void migrate();

  IslandOptions island_options_;
  std::vector<std::unique_ptr<Island>> islands_;
  /// The migration barrier the run is advancing toward (absolute
  /// generation); persisted in checkpoints to disambiguate "barrier done,
  /// migration applied" from a mid-segment stop at the same generations.
  std::int64_t next_migration_ = 0;
  bool restored_ = false;
  int champion_ = 0;
  int max_generations_ = 0;
  /// Coordinator fan-out width: min(islands, resolved GA thread count);
  /// the per-island GAs split the remaining threads evenly.
  int outer_threads_ = 1;
};

}  // namespace mmsyn
