#include "core/run_control.hpp"

#include <bit>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/checksum.hpp"
#include "common/durable_file.hpp"
#include "common/failpoint.hpp"
#include "common/interrupt.hpp"

namespace mmsyn {
namespace {

// Checkpoint file layout (all integers little-endian):
//   8 bytes  magic "MMSYNCKP"
//   u32      format version (kVersion)
//   u64      payload size in bytes
//   payload  serialized island container (see serialize_container)
//   u32      CRC-32 of the payload
// The trailing CRC plus the explicit size reject truncation and bit rot;
// the version gates format evolution.
constexpr char kMagic[8] = {'M', 'M', 'S', 'Y', 'N', 'C', 'K', 'P'};
// v2: appended the per-mode evaluation memo (keys + results + counters).
// v3: appended the schedule-stage tier of the same memo (keys + schedule
// artifacts + counters). Older files are rejected up front — without the
// stage store and its counters a resumed run could not replay the
// stage-level hit accounting bit-identically.
// v4: every file is an island container — config header (island count,
// migration schedule, next barrier) followed by one length-prefixed
// GaSnapshot per island; a single-population save is the one-island
// special case. GaSnapshot itself gained the `converged` latch.
// v5: ModeEvaluation gained the power-model breakdown fields
// (baseline_static_power, idle_energy_saved, wake_energy, temperature),
// serialized after `routable`.
constexpr std::uint32_t kVersion = 5;

class Writer {
public:
  void u8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  [[nodiscard]] const std::string& bytes() const { return bytes_; }

private:
  std::string bytes_;
};

class Reader {
public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    if (pos_ >= bytes_.size())
      throw CheckpointError("payload truncated");
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{u8()} << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{u8()} << (8 * i);
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean() { return u8() != 0; }

  /// A raw slice of `n` bytes (used for the length-prefixed per-island
  /// payloads of the v4 container).
  std::string_view raw(std::size_t n) {
    if (n > bytes_.size() - pos_)
      throw CheckpointError("payload truncated");
    const std::string_view slice = bytes_.substr(pos_, n);
    pos_ += n;
    return slice;
  }

  [[nodiscard]] bool done() const { return pos_ == bytes_.size(); }

private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

void write_individual(Writer& w, const SnapshotIndividual& ind,
                      std::size_t genome_length) {
  if (ind.genome.size() != genome_length)
    throw CheckpointError("inconsistent genome length in snapshot");
  for (std::uint16_t gene : ind.genome) {
    w.u8(static_cast<std::uint8_t>(gene & 0xff));
    w.u8(static_cast<std::uint8_t>(gene >> 8));
  }
  w.f64(ind.fitness);
  w.f64(ind.violation);
  w.f64(ind.power_true);
  w.boolean(ind.evaluated);
  w.boolean(ind.area_infeasible);
  w.boolean(ind.timing_infeasible);
  w.boolean(ind.transition_infeasible);
}

SnapshotIndividual read_individual(Reader& r, std::size_t genome_length) {
  SnapshotIndividual ind;
  ind.genome.resize(genome_length);
  for (std::uint16_t& gene : ind.genome) {
    const std::uint16_t lo = r.u8();
    const std::uint16_t hi = r.u8();
    gene = static_cast<std::uint16_t>(lo | (hi << 8));
  }
  ind.fitness = r.f64();
  ind.violation = r.f64();
  ind.power_true = r.f64();
  ind.evaluated = r.boolean();
  ind.area_infeasible = r.boolean();
  ind.timing_infeasible = r.boolean();
  ind.transition_infeasible = r.boolean();
  return ind;
}

void write_mode_key(Writer& w, const ModeEvalKey& key) {
  w.u32(key.mode);
  w.u64(key.options_fingerprint);
  w.u64(key.task_to_pe.size());
  for (PeId p : key.task_to_pe) w.i32(p.value());
  w.u64(key.cores.size());
  for (const CoreSet& set : key.cores) {
    w.u64(set.entries().size());
    for (const auto& [type, count] : set.entries()) {
      w.i32(type.value());
      w.i32(count);
    }
  }
}

ModeEvalKey read_mode_key(Reader& r) {
  ModeEvalKey key;
  key.mode = r.u32();
  key.options_fingerprint = r.u64();
  const std::uint64_t n_tasks = r.u64();
  key.task_to_pe.reserve(n_tasks);
  for (std::uint64_t i = 0; i < n_tasks; ++i)
    key.task_to_pe.push_back(PeId{static_cast<PeId::value_type>(r.i32())});
  const std::uint64_t n_sets = r.u64();
  key.cores.resize(n_sets);
  for (CoreSet& set : key.cores) {
    const std::uint64_t n_entries = r.u64();
    for (std::uint64_t e = 0; e < n_entries; ++e) {
      const TaskTypeId type{static_cast<TaskTypeId::value_type>(r.i32())};
      set.set_count(type, r.i32());
    }
  }
  return key;
}

void write_mode_evaluation(Writer& w, const ModeEvaluation& m) {
  // The memo never holds schedules (the GA hot loop drops them); a
  // schedule here means the snapshot was built from the wrong evaluator
  // configuration, which resume could not reproduce.
  if (m.schedule.has_value())
    throw CheckpointError("mode-cache entry carries a schedule");
  w.f64(m.dyn_energy);
  w.f64(m.dyn_power);
  w.f64(m.static_power);
  w.f64(m.timing_violation);
  w.f64(m.makespan);
  w.u64(m.pe_active.size());
  for (bool b : m.pe_active) w.boolean(b);
  w.u64(m.cl_active.size());
  for (bool b : m.cl_active) w.boolean(b);
  w.boolean(m.routable);
  w.f64(m.baseline_static_power);
  w.f64(m.idle_energy_saved);
  w.f64(m.wake_energy);
  w.f64(m.temperature);
}

ModeEvaluation read_mode_evaluation(Reader& r) {
  ModeEvaluation m;
  m.dyn_energy = r.f64();
  m.dyn_power = r.f64();
  m.static_power = r.f64();
  m.timing_violation = r.f64();
  m.makespan = r.f64();
  m.pe_active.resize(r.u64());
  for (std::size_t i = 0; i < m.pe_active.size(); ++i)
    m.pe_active[i] = r.boolean();
  m.cl_active.resize(r.u64());
  for (std::size_t i = 0; i < m.cl_active.size(); ++i)
    m.cl_active[i] = r.boolean();
  m.routable = r.boolean();
  m.baseline_static_power = r.f64();
  m.idle_energy_saved = r.f64();
  m.wake_energy = r.f64();
  m.temperature = r.f64();
  return m;
}

void write_mode_schedule(Writer& w, const ModeSchedule& s) {
  w.u64(s.tasks.size());
  for (const ScheduledTask& t : s.tasks) {
    w.i32(t.task.value());
    w.i32(t.pe.value());
    w.i32(t.core_instance);
    w.f64(t.start);
    w.f64(t.finish);
  }
  w.u64(s.comms.size());
  for (const ScheduledComm& c : s.comms) {
    w.i32(c.edge.value());
    w.i32(c.cl.value());
    w.boolean(c.local);
    w.f64(c.start);
    w.f64(c.finish);
  }
  w.f64(s.makespan);
  w.boolean(s.routable);
}

ModeSchedule read_mode_schedule(Reader& r) {
  ModeSchedule s;
  s.tasks.resize(r.u64());
  for (ScheduledTask& t : s.tasks) {
    t.task = TaskId{static_cast<TaskId::value_type>(r.i32())};
    t.pe = PeId{static_cast<PeId::value_type>(r.i32())};
    t.core_instance = r.i32();
    t.start = r.f64();
    t.finish = r.f64();
  }
  s.comms.resize(r.u64());
  for (ScheduledComm& c : s.comms) {
    c.edge = EdgeId{static_cast<EdgeId::value_type>(r.i32())};
    c.cl = ClId{static_cast<ClId::value_type>(r.i32())};
    c.local = r.boolean();
    c.start = r.f64();
    c.finish = r.f64();
  }
  s.makespan = r.f64();
  s.routable = r.boolean();
  return s;
}

std::string serialize_ga(const GaSnapshot& snapshot) {
  // Genomes are fixed-length per run; store the length once.
  const std::size_t genome_length =
      snapshot.population.empty() ? snapshot.best.genome.size()
                                  : snapshot.population.front().genome.size();
  Writer w;
  w.u64(snapshot.fingerprint);
  w.u64(genome_length);
  w.i32(snapshot.next_generation);
  w.i32(snapshot.stagnation);
  w.boolean(snapshot.converged);
  w.i32(snapshot.area_infeasible_streak);
  w.i32(snapshot.timing_infeasible_streak);
  w.i32(snapshot.transition_infeasible_streak);
  w.i64(snapshot.evaluations);
  w.i64(snapshot.cache_hits);
  w.i64(snapshot.cache_lookups);
  w.f64(snapshot.elapsed_seconds);
  for (std::uint64_t word : snapshot.rng_state) w.u64(word);
  w.boolean(snapshot.has_best);
  write_individual(w, snapshot.best, snapshot.best.genome.size());
  w.u64(snapshot.population.size());
  for (const SnapshotIndividual& ind : snapshot.population)
    write_individual(w, ind, genome_length);
  w.u64(snapshot.cache.size());
  for (const SnapshotIndividual& ind : snapshot.cache)
    write_individual(w, ind, genome_length);
  w.i64(snapshot.mode_cache_hits);
  w.i64(snapshot.mode_cache_lookups);
  w.u64(snapshot.mode_cache.size());
  for (const auto& [key, value] : snapshot.mode_cache) {
    write_mode_key(w, key);
    write_mode_evaluation(w, value);
  }
  w.i64(snapshot.schedule_cache_hits);
  w.i64(snapshot.schedule_cache_lookups);
  w.u64(snapshot.schedule_cache.size());
  for (const auto& [key, value] : snapshot.schedule_cache) {
    write_mode_key(w, key);
    write_mode_schedule(w, value);
  }
  return w.bytes();
}

GaSnapshot deserialize_ga(std::string_view payload) {
  Reader r(payload);
  GaSnapshot s;
  s.fingerprint = r.u64();
  const std::size_t genome_length = r.u64();
  s.next_generation = r.i32();
  s.stagnation = r.i32();
  s.converged = r.boolean();
  s.area_infeasible_streak = r.i32();
  s.timing_infeasible_streak = r.i32();
  s.transition_infeasible_streak = r.i32();
  s.evaluations = r.i64();
  s.cache_hits = r.i64();
  s.cache_lookups = r.i64();
  s.elapsed_seconds = r.f64();
  for (std::uint64_t& word : s.rng_state) word = r.u64();
  s.has_best = r.boolean();
  s.best = read_individual(r, genome_length);
  const std::uint64_t population_count = r.u64();
  s.population.reserve(population_count);
  for (std::uint64_t i = 0; i < population_count; ++i)
    s.population.push_back(read_individual(r, genome_length));
  const std::uint64_t cache_count = r.u64();
  s.cache.reserve(cache_count);
  for (std::uint64_t i = 0; i < cache_count; ++i)
    s.cache.push_back(read_individual(r, genome_length));
  s.mode_cache_hits = r.i64();
  s.mode_cache_lookups = r.i64();
  const std::uint64_t mode_cache_count = r.u64();
  s.mode_cache.reserve(mode_cache_count);
  for (std::uint64_t i = 0; i < mode_cache_count; ++i) {
    ModeEvalKey key = read_mode_key(r);
    ModeEvaluation value = read_mode_evaluation(r);
    s.mode_cache.emplace_back(std::move(key), std::move(value));
  }
  s.schedule_cache_hits = r.i64();
  s.schedule_cache_lookups = r.i64();
  const std::uint64_t schedule_cache_count = r.u64();
  s.schedule_cache.reserve(schedule_cache_count);
  for (std::uint64_t i = 0; i < schedule_cache_count; ++i) {
    ModeEvalKey key = read_mode_key(r);
    ModeSchedule value = read_mode_schedule(r);
    s.schedule_cache.emplace_back(std::move(key), std::move(value));
  }
  if (!r.done()) throw CheckpointError("trailing bytes in payload");
  return s;
}

// The v4 island container: config header + length-prefixed per-island
// GaSnapshot payloads, in island order.
std::string serialize_container(const IslandSnapshot& snapshot) {
  if (snapshot.islands.size() !=
      static_cast<std::size_t>(snapshot.island_count))
    throw CheckpointError("island container holds " +
                          std::to_string(snapshot.islands.size()) +
                          " snapshots but declares " +
                          std::to_string(snapshot.island_count));
  Writer w;
  w.u64(snapshot.fingerprint);
  w.i32(snapshot.island_count);
  w.i32(snapshot.migration_interval);
  w.i32(snapshot.migrants);
  w.i64(snapshot.next_migration_generation);
  std::string bytes = w.bytes();
  for (const GaSnapshot& island : snapshot.islands) {
    const std::string payload = serialize_ga(island);
    Writer len;
    len.u64(payload.size());
    bytes += len.bytes();
    bytes += payload;
  }
  return bytes;
}

IslandSnapshot deserialize_container(std::string_view payload) {
  Reader r(payload);
  IslandSnapshot s;
  s.fingerprint = r.u64();
  s.island_count = r.i32();
  s.migration_interval = r.i32();
  s.migrants = r.i32();
  s.next_migration_generation = r.i64();
  if (s.island_count < 1)
    throw CheckpointError("island container declares " +
                          std::to_string(s.island_count) + " islands");
  s.islands.reserve(static_cast<std::size_t>(s.island_count));
  for (std::int32_t i = 0; i < s.island_count; ++i)
    s.islands.push_back(deserialize_ga(r.raw(r.u64())));
  if (!r.done()) throw CheckpointError("trailing bytes in payload");
  return s;
}

/// Wraps a single-population snapshot as the one-island container.
IslandSnapshot wrap_single(const GaSnapshot& snapshot) {
  IslandSnapshot s;
  s.fingerprint = snapshot.fingerprint;
  s.island_count = 1;
  s.islands.push_back(snapshot);
  return s;
}

// Failpoints on the checkpoint I/O path (see common/failpoint.hpp).
// `fail` on either site is retried with deterministic backoff; `corrupt`
// on checkpoint.write flips one payload byte in the on-disk image (the
// generation then fails its CRC on load, exercising the fallback), and
// `corrupt` on io.read flips one byte of the in-memory image after a
// clean read. io.read is shared by name with model/io.cpp.
failpoint::Site fp_checkpoint_write{"checkpoint.write"};
failpoint::Site fp_checkpoint_rename{"checkpoint.rename"};
failpoint::Site fp_io_read{"io.read"};

}  // namespace

std::string checkpoint_generation_path(const std::string& path,
                                       int generation) {
  return generation <= 0 ? path : path + "." + std::to_string(generation);
}

namespace {

void save_payload_rotating(const std::string& path, const std::string& payload,
                           int keep) {
  if (keep < 1) keep = 1;

  std::string file;
  file.reserve(payload.size() + 24);
  file.append(kMagic, sizeof kMagic);
  Writer header;
  header.u32(kVersion);
  header.u64(payload.size());
  file += header.bytes();
  file += payload;
  Writer trailer;
  trailer.u32(crc32(payload));
  file += trailer.bytes();

  const std::string tmp = path + ".tmp";
  try {
    failpoint::retry_transient("checkpoint.write", [&] {
      std::string image = file;
      if (failpoint::inject(fp_checkpoint_write)) {
        // Deterministic corruption: flip one bit mid-payload; the CRC
        // trailer stays stale so the generation is rejected on load.
        const std::size_t at = sizeof kMagic + 12 + payload.size() / 2;
        image[at] = static_cast<char>(image[at] ^ 0x01);
      }
      try {
        write_file_durable(tmp, image);
      } catch (const DurableIoError& e) {
        // The checkpoint layer's callers tolerate CheckpointError (a
        // lost periodic save must not kill a multi-hour run).
        throw CheckpointError(e.what());
      }
    });

    // Shift the surviving generations up before the new file takes the
    // base name; a missing generation is not an error (fresh runs).
    for (int gen = keep - 1; gen >= 1; --gen)
      (void)std::rename(checkpoint_generation_path(path, gen - 1).c_str(),
                        checkpoint_generation_path(path, gen).c_str());

    // Atomic replace: a crash mid-save leaves the previous generations in
    // place (possibly shifted up one slot), never a half-written file
    // under a loadable name.
    failpoint::retry_transient("checkpoint.rename", [&] {
      (void)failpoint::inject(fp_checkpoint_rename);
      if (std::rename(tmp.c_str(), path.c_str()) != 0)
        throw CheckpointError("cannot rename " + tmp + " to " + path);
    });
  } catch (const TransientFault& e) {
    // Exhausted retries surface as the checkpoint-layer error type.
    std::remove(tmp.c_str());
    throw CheckpointError(std::string("giving up after ") +
                          std::to_string(failpoint::kMaxRetryAttempts) +
                          " attempts: " + e.what());
  }
  fsync_parent_dir(path);
}

}  // namespace

void save_checkpoint_rotating(const std::string& path,
                              const GaSnapshot& snapshot, int keep) {
  save_payload_rotating(path, serialize_container(wrap_single(snapshot)),
                        keep);
}

void save_island_checkpoint_rotating(const std::string& path,
                                     const IslandSnapshot& snapshot,
                                     int keep) {
  save_payload_rotating(path, serialize_container(snapshot), keep);
}

void save_checkpoint(const std::string& path, const GaSnapshot& snapshot) {
  save_checkpoint_rotating(path, snapshot, /*keep=*/1);
}

IslandSnapshot load_island_checkpoint(const std::string& path) {
  std::string file;
  try {
    file = failpoint::retry_transient("checkpoint read", [&] {
      const bool corrupt = failpoint::inject(fp_io_read);
      std::ifstream is(path, std::ios::binary);
      if (!is) throw CheckpointError("cannot open for reading: " + path);
      std::ostringstream buffer;
      buffer << is.rdbuf();
      std::string bytes = buffer.str();
      if (corrupt && !bytes.empty())
        bytes[bytes.size() / 2] =
            static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
      return bytes;
    });
  } catch (const TransientFault& e) {
    throw CheckpointError(std::string("giving up after ") +
                          std::to_string(failpoint::kMaxRetryAttempts) +
                          " attempts: " + e.what());
  }

  if (file.size() < sizeof kMagic + 12 ||
      file.compare(0, sizeof kMagic, kMagic, sizeof kMagic) != 0)
    throw CheckpointError("not a mmsyn checkpoint: " + path);
  Reader header(std::string_view(file).substr(sizeof kMagic, 12));
  const std::uint32_t version = header.u32();
  if (version != kVersion)
    throw CheckpointError("unsupported checkpoint version " +
                          std::to_string(version));
  const std::uint64_t payload_size = header.u64();
  const std::size_t payload_offset = sizeof kMagic + 12;
  if (file.size() != payload_offset + payload_size + 4)
    throw CheckpointError("truncated checkpoint: " + path);
  const std::string_view payload =
      std::string_view(file).substr(payload_offset, payload_size);
  Reader trailer(std::string_view(file).substr(payload_offset + payload_size));
  if (trailer.u32() != crc32(payload))
    throw CheckpointError("CRC mismatch (corrupted file): " + path);
  return deserialize_container(payload);
}

GaSnapshot load_checkpoint(const std::string& path) {
  IslandSnapshot container = load_island_checkpoint(path);
  if (container.island_count != 1)
    throw CheckpointError(
        path + " is an island-model checkpoint (" +
        std::to_string(container.island_count) +
        " islands); resume it with --islands=" +
        std::to_string(container.island_count) +
        " and the matching migration schedule instead of a "
        "single-population run");
  return std::move(container.islands.front());
}

CheckpointLoadResult load_checkpoint_fallback(
    const std::string& path, int keep,
    std::optional<std::uint64_t> expected_fingerprint) {
  if (keep < 1) keep = 1;
  CheckpointLoadResult result;
  for (int gen = 0; gen < keep; ++gen) {
    const std::string gen_path = checkpoint_generation_path(path, gen);
    try {
      GaSnapshot snapshot = load_checkpoint(gen_path);
      if (expected_fingerprint.has_value() &&
          snapshot.fingerprint != *expected_fingerprint)
        throw CheckpointError("configuration fingerprint mismatch: " +
                              gen_path);
      result.snapshot = std::move(snapshot);
      result.loaded_path = gen_path;
      result.generation = gen;
      return result;
    } catch (const CheckpointError& e) {
      result.notes.emplace_back(e.what());
    }
  }
  std::string message = "no usable checkpoint generation under " + path;
  for (const std::string& note : result.notes) message += "; " + note;
  throw CheckpointError(message);
}

IslandCheckpointLoadResult load_island_checkpoint_fallback(
    const std::string& path, int keep,
    std::optional<std::uint64_t> expected_fingerprint) {
  if (keep < 1) keep = 1;
  IslandCheckpointLoadResult result;
  for (int gen = 0; gen < keep; ++gen) {
    const std::string gen_path = checkpoint_generation_path(path, gen);
    try {
      IslandSnapshot snapshot = load_island_checkpoint(gen_path);
      if (expected_fingerprint.has_value() &&
          snapshot.fingerprint != *expected_fingerprint)
        throw CheckpointError(
            "island configuration fingerprint mismatch (different island "
            "count, migration schedule, seed, or GA options): " + gen_path);
      result.snapshot = std::move(snapshot);
      result.loaded_path = gen_path;
      result.generation = gen;
      return result;
    } catch (const CheckpointError& e) {
      result.notes.emplace_back(e.what());
    }
  }
  std::string message = "no usable checkpoint generation under " + path;
  for (const std::string& note : result.notes) message += "; " + note;
  throw CheckpointError(message);
}

void RunControl::write_island_checkpoint(const IslandSnapshot& snapshot) const {
  if (checkpoint_path.empty()) return;
  try {
    save_island_checkpoint_rotating(checkpoint_path, snapshot,
                                    checkpoint_keep_generations);
  } catch (const CheckpointError& e) {
    ++checkpoint_write_failures_;
    log_recovery(std::string("tolerated checkpoint write failure (run "
                             "continues on older generations): ") +
                 e.what());
  }
}

void RunControl::write_checkpoint(const GaSnapshot& snapshot) const {
  if (checkpoint_path.empty()) return;
  try {
    save_checkpoint_rotating(checkpoint_path, snapshot,
                             checkpoint_keep_generations);
  } catch (const CheckpointError& e) {
    ++checkpoint_write_failures_;
    log_recovery(std::string("tolerated checkpoint write failure (run "
                             "continues on older generations): ") +
                 e.what());
  }
}

bool RunControl::cancel_requested() const {
  return cancelled_.load(std::memory_order_relaxed) ||
         (poll_interrupt_flag_ && interrupt_requested());
}

}  // namespace mmsyn
