// Human-readable implementation reports.
//
// Renders a SynthesisResult — the four implementation functions of
// Section 2.2 (task mapping, communication mapping, timing schedule,
// voltage schedule) plus the power/feasibility summary — as text for
// logs, examples, and tool output.
#pragma once

#include <string>

#include "core/ga.hpp"

namespace mmsyn {

struct ReportOptions {
  /// Append an ASCII Gantt chart per mode (requires the result to carry
  /// schedules, which synthesize() always provides).
  bool include_gantt = true;
  /// Recompute and append the per-mode voltage schedules (meaningful for
  /// results synthesised with DVS).
  bool include_voltage_schedules = false;
  /// Chart width passed to the Gantt renderer.
  int gantt_width = 72;
  /// Include the wall-clock elapsed time in the header. Disable to render
  /// reports that are byte-identical across runs of the same seed (the
  /// checkpoint/resume determinism checks rely on this).
  bool include_timing = true;
};

/// Formats the complete implementation report of `result` for `system`.
[[nodiscard]] std::string implementation_report(
    const System& system, const SynthesisResult& result,
    const ReportOptions& options = {});

}  // namespace mmsyn
