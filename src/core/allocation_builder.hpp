// ImplementHWcores (Fig. 4, line 05): derives the hardware core allocation
// from a task mapping.
//
// Every task type mapped onto a hardware PE needs at least one core of that
// type. While spare area remains, additional cores are allocated for types
// whose tasks can actually run in parallel — judged by overlapping
// contention-free ASAP execution windows, preferring low-mobility (urgent)
// tasks — so application parallelism (and, with DVS, the resulting slack)
// can be exploited. ASIC core sets are the per-type maximum over all modes
// (static silicon); FPGA sets are per-mode (reconfigurable).
#pragma once

#include "model/core_allocation.hpp"
#include "model/mapping.hpp"

namespace mmsyn {

struct System;

struct AllocationOptions {
  /// Allocate extra cores for parallel tasks (disable to study the
  /// ablation of multi-core allocation).
  bool allocate_parallel_cores = true;
  /// Only tasks with mobility below this fraction of the mode period
  /// attract extra cores.
  double mobility_threshold = 0.5;
};

/// Builds the core allocation for `mapping`.
[[nodiscard]] CoreAllocation build_core_allocation(
    const System& system, const MultiModeMapping& mapping,
    const AllocationOptions& options = {});

}  // namespace mmsyn
