// The four genetic improvement operators of Section 4.1 (Fig. 4 lines
// 19–22). Each rewrites a genome in place; all return true when they
// changed at least one gene.
#pragma once

#include "common/rng.hpp"
#include "core/genome.hpp"

namespace mmsyn {

struct System;

/// Shut-down improvement: picks one mode and one *non-essential* PE (every
/// task it hosts in that mode has an alternative implementation) and
/// re-maps all of that mode's tasks away from it, enabling the PE to be
/// powered down during the mode.
bool shutdown_improvement(Genome& genome, const GenomeCodec& codec,
                          const System& system, Rng& rng);

/// Area improvement: picks one hardware PE and randomly re-maps tasks
/// assigned to it onto software-programmable candidates, pulling the
/// search away from area-infeasible regions.
bool area_improvement(Genome& genome, const GenomeCodec& codec,
                      const System& system, Rng& rng);

/// Timing improvement: randomly re-maps software tasks onto strictly
/// faster hardware implementations.
bool timing_improvement(Genome& genome, const GenomeCodec& codec,
                        const System& system, Rng& rng);

/// Transition improvement: picks one FPGA and one mode and re-maps that
/// mode's tasks away from the FPGA, reducing reconfiguration payload on
/// transitions into the mode.
bool transition_improvement(Genome& genome, const GenomeCodec& codec,
                            const System& system, Rng& rng);

}  // namespace mmsyn
