#include "core/genome.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "model/system.hpp"

namespace mmsyn {

GenomeCodec::GenomeCodec(const System& system) {
  const Omsm& omsm = system.omsm;
  mode_offset_.resize(omsm.mode_count());
  mode_size_.resize(omsm.mode_count());
  for (std::size_t m = 0; m < omsm.mode_count(); ++m) {
    const Mode& mode = omsm.mode(ModeId{static_cast<ModeId::value_type>(m)});
    mode_offset_[m] = gene_count_;
    mode_size_[m] = mode.graph.task_count();
    gene_count_ += mode.graph.task_count();
    for (const Task& task : mode.graph.tasks()) {
      auto cands = system.tech.candidate_pes(task.type, system.arch.pe_count());
      if (cands.empty())
        throw std::invalid_argument(
            "GenomeCodec: task type '" + system.tech.type_name(task.type) +
            "' has no candidate PE");
      candidates_.push_back(std::move(cands));
    }
  }
}

bool GenomeCodec::set_pe(Genome& genome, std::size_t g, PeId pe) const {
  const auto& cands = candidates_[g];
  const auto it = std::find(cands.begin(), cands.end(), pe);
  if (it == cands.end()) return false;
  genome[g] = static_cast<std::uint16_t>(it - cands.begin());
  return true;
}

MultiModeMapping GenomeCodec::decode(const Genome& genome) const {
  assert(genome.size() == gene_count_);
  MultiModeMapping mapping;
  mapping.modes.resize(mode_offset_.size());
  for (std::size_t m = 0; m < mode_offset_.size(); ++m) {
    auto& task_to_pe = mapping.modes[m].task_to_pe;
    task_to_pe.resize(mode_size_[m]);
    for (std::size_t t = 0; t < mode_size_[m]; ++t) {
      const std::size_t g = mode_offset_[m] + t;
      task_to_pe[t] = candidates_[g][genome[g]];
    }
  }
  return mapping;
}

Genome GenomeCodec::encode(const MultiModeMapping& mapping) const {
  Genome genome(gene_count_);
  for (std::size_t m = 0; m < mode_offset_.size(); ++m) {
    for (std::size_t t = 0; t < mode_size_[m]; ++t) {
      const std::size_t g = mode_offset_[m] + t;
      const PeId pe = mapping.modes[m].task_to_pe[t];
      if (!set_pe(genome, g, pe))
        throw std::invalid_argument(
            "GenomeCodec::encode: mapping uses a non-candidate PE");
    }
  }
  return genome;
}

Genome GenomeCodec::random_genome(Rng& rng) const {
  Genome genome(gene_count_);
  for (std::size_t g = 0; g < gene_count_; ++g)
    genome[g] =
        static_cast<std::uint16_t>(rng.pick_index(candidates_[g].size()));
  return genome;
}

ModeId GenomeCodec::mode_of_gene(std::size_t g) const {
  // mode_offset_ is ascending; find the last offset <= g.
  auto it = std::upper_bound(mode_offset_.begin(), mode_offset_.end(), g);
  const std::size_t m = static_cast<std::size_t>(it - mode_offset_.begin()) - 1;
  return ModeId{static_cast<ModeId::value_type>(m)};
}

TaskId GenomeCodec::task_of_gene(std::size_t g) const {
  const ModeId mode = mode_of_gene(g);
  return TaskId{
      static_cast<TaskId::value_type>(g - mode_offset_[mode.index()])};
}

std::vector<ModeId> GenomeCodec::changed_modes(const Genome& a,
                                               const Genome& b) const {
  assert(a.size() == gene_count_ && b.size() == gene_count_);
  std::vector<ModeId> changed;
  for (std::size_t m = 0; m < mode_offset_.size(); ++m) {
    const std::size_t begin = mode_offset_[m];
    const std::size_t end = begin + mode_size_[m];
    for (std::size_t g = begin; g < end; ++g) {
      if (a[g] != b[g]) {
        changed.push_back(ModeId{static_cast<ModeId::value_type>(m)});
        break;
      }
    }
  }
  return changed;
}

std::size_t GenomeHash::operator()(const Genome& genome) const {
  // FNV-1a over the gene bytes; genomes are short, collisions harmless
  // (the cache only skips work, never changes results... provided the full
  // key comparison of unordered_map resolves them — it does).
  std::size_t hash = 1469598103934665603ull;
  for (std::uint16_t gene : genome) {
    hash ^= gene;
    hash *= 1099511628211ull;
  }
  return hash;
}

double hamming_fraction(const Genome& a, const Genome& b) {
  assert(a.size() == b.size());
  if (a.empty()) return 0.0;
  std::size_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) ++diff;
  return static_cast<double>(diff) / static_cast<double>(a.size());
}

}  // namespace mmsyn
