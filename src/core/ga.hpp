// The outer optimisation loop of Fig. 4: a genetic algorithm over
// multi-mode mapping strings with ranking selection, two-point crossover,
// offspring insertion, and the four improvement mutation operators.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/allocation_builder.hpp"
#include "core/fitness.hpp"
#include "core/genome.hpp"
#include "energy/evaluator.hpp"
#include "model/core_allocation.hpp"

namespace mmsyn {

/// GA tuning parameters.
struct GaOptions {
  int population_size = 64;
  int max_generations = 600;
  /// Convergence: stop after this many generations without improvement of
  /// the best individual.
  int stagnation_limit = 70;
  /// Convergence: also stop when average pairwise diversity (sampled
  /// normalised Hamming distance) drops below this value *and* the search
  /// has stagnated for stagnation_limit/2 generations. Random immigrants
  /// keep this from firing prematurely; 0 disables the check.
  double diversity_floor = 0.0;
  /// Fraction of the population replaced by fresh random genomes each
  /// generation (random-immigrant diversity maintenance).
  double immigrant_fraction = 0.08;
  /// Fraction of the population replaced by offspring each generation.
  double replacement_fraction = 0.5;
  /// Per-gene probability of random re-assignment applied to offspring.
  double gene_mutation_rate = 0.02;
  /// Tournament size of the mating selection (on rank-scaled fitness).
  int tournament_size = 2;
  /// Selection pressure of the linear ranking (1 < s <= 2).
  double ranking_pressure = 1.8;
  /// Number of elite individuals never replaced or mutated.
  int elite_count = 2;

  /// Seed the initial population with deterministic heuristics (weighted
  /// area-knapsack greedies and all-software) besides the random genomes.
  bool seed_heuristic_individuals = true;
  /// Hill-climbing passes over the best individual after convergence
  /// (memetic polish): every gene tries all its candidates, improvements
  /// stick; stops early at a fixpoint.
  int final_hill_climb_passes = 4;
  /// For genomes up to this many genes, additionally run exhaustive
  /// pairwise (2-opt) improvement — escapes the coordinated-swap local
  /// optima that greedy-density seeds produce on tiny instances.
  int final_two_opt_max_genes = 16;

  /// Memoise fitness by genome: concentrated populations re-evaluate the
  /// same mapping strings constantly; caching skips the (scheduling + DVS)
  /// inner loop for repeats. Disable to measure raw evaluation counts.
  bool memoize_evaluations = true;

  /// Shut-down improvement probability per individual per generation.
  double shutdown_improvement_rate = 0.02;
  /// Generations of all-infeasible populations that trigger the area /
  /// timing / transition improvement sweeps.
  int infeasibility_trigger = 4;
  /// Fraction of the (non-elite) population rewritten by a triggered
  /// improvement sweep.
  double improvement_sweep_fraction = 0.25;
};

/// Progress snapshot handed to the optional per-generation observer.
struct GaProgress {
  int generation = 0;
  double best_fitness = 0.0;
  double best_power_true = 0.0;
  double diversity = 0.0;
  long evaluations = 0;
};

/// Synthesis outcome.
struct SynthesisResult {
  MultiModeMapping mapping;
  CoreAllocation cores;
  /// Final evaluation of the best candidate (reporting configuration).
  Evaluation evaluation;
  double fitness = 0.0;
  int generations = 0;
  long evaluations = 0;
  double elapsed_seconds = 0.0;
};

/// The multi-mode mapping GA. The evaluator decides whether DVS is applied
/// inside the loop and which mode weights the objective uses.
class MappingGa {
public:
  MappingGa(const System& system, const Evaluator& evaluator,
            FitnessParams fitness_params, AllocationOptions alloc_options,
            GaOptions options, std::uint64_t seed);

  /// Runs to convergence. `observer` (optional) is invoked once per
  /// generation.
  [[nodiscard]] SynthesisResult run(
      const std::function<void(const GaProgress&)>& observer = {});

  /// Objective-aware greedy seed: for each hardware PE, selects the task
  /// types with the best weighted-energy-saving per area (a knapsack on
  /// the core area) and maps those types' tasks into hardware, the rest
  /// onto their cheapest software candidate. `mode_weights` (normalised
  /// internally; empty = the evaluator's weights) chooses the objective;
  /// the GA seeds itself with the greedy of its own objective, of the
  /// uniform objective and of the true-Ψ objective, so no run depends on
  /// seed luck. Exposed for tests and diagnostics.
  [[nodiscard]] Genome knapsack_seed_genome(
      std::vector<double> mode_weights = {}) const;
  /// All-software seed (lowest-energy software candidate per task).
  [[nodiscard]] Genome software_seed_genome() const;

  [[nodiscard]] const GenomeCodec& codec() const { return codec_; }

private:
  struct Individual {
    Genome genome;
    double fitness = 0.0;
    /// Normalised constraint violation (0 == feasible); ranking is
    /// feasible-first (see candidate_better).
    double violation = 0.0;
    bool evaluated = false;
    bool area_infeasible = false;
    bool timing_infeasible = false;
    bool transition_infeasible = false;
    double power_true = 0.0;
  };

  void evaluate(Individual& ind);
  [[nodiscard]] double population_diversity() const;

  const System& system_;
  const Evaluator& evaluator_;
  FitnessParams fitness_params_;
  AllocationOptions alloc_options_;
  GaOptions options_;
  GenomeCodec codec_;
  Rng rng_;
  std::vector<Individual> population_;
  long evaluations_ = 0;

  /// Fitness memo keyed by genome (see GaOptions::memoize_evaluations).
  struct CachedFitness {
    double fitness;
    double violation;
    bool area_infeasible;
    bool timing_infeasible;
    bool transition_infeasible;
    double power_true;
  };
  std::unordered_map<Genome, CachedFitness, GenomeHash> cache_;
};

}  // namespace mmsyn
