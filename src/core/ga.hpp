// The outer optimisation loop of Fig. 4: a genetic algorithm over
// multi-mode mapping strings with ranking selection, two-point crossover,
// offspring insertion, and the four improvement mutation operators.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "core/allocation_builder.hpp"
#include "core/fitness.hpp"
#include "core/genome.hpp"
#include "energy/evaluator.hpp"
#include "model/core_allocation.hpp"

namespace mmsyn {

class ThreadPool;
class RunControl;
struct GaSnapshot;

namespace ga_detail {

/// Offspring count per generation: an even number derived from
/// `replacement_fraction`, clamped so offspring can never spill into the
/// elite slots (replacement fills the ranked-worst positions upwards).
[[nodiscard]] int clamped_offspring_count(double replacement_fraction,
                                          int population_size,
                                          int elite_count);

/// Population slot taken by immigrant `immigrant_index` (signed: negative
/// or elite-overlapping results mean "no free slot left, stop").
[[nodiscard]] int immigrant_slot(int population_size, int offspring_count,
                                 int immigrant_index);

/// Number of random immigrants inserted per generation. Pinned behaviour
/// (checkpointed runs replay it): the fraction is truncated —
/// `int(immigrant_fraction * population_size)` — but a positive fraction
/// always requests at least one immigrant (small populations previously
/// lost their diversity pressure to truncation), and the request is then
/// capped by the free slots below the offspring block and above the elite
/// (slots `[0, elite_count)` are reserved; `elite_count` itself is the
/// first insertable slot).
[[nodiscard]] int immigrant_count(double immigrant_fraction,
                                  int population_size, int offspring_count,
                                  int elite_count);

}  // namespace ga_detail

/// GA tuning parameters.
struct GaOptions {
  int population_size = 64;
  int max_generations = 600;
  /// Convergence: stop after this many generations without improvement of
  /// the best individual.
  int stagnation_limit = 70;
  /// Convergence: also stop when average pairwise diversity (sampled
  /// normalised Hamming distance) drops below this value *and* the search
  /// has stagnated for stagnation_limit/2 generations. Random immigrants
  /// keep this from firing prematurely; 0 disables the check.
  double diversity_floor = 0.0;
  /// Fraction of the population replaced by fresh random genomes each
  /// generation (random-immigrant diversity maintenance).
  double immigrant_fraction = 0.08;
  /// Fraction of the population replaced by offspring each generation.
  double replacement_fraction = 0.5;
  /// Per-gene probability of random re-assignment applied to offspring.
  double gene_mutation_rate = 0.02;
  /// Tournament size of the mating selection (on rank-scaled fitness).
  int tournament_size = 2;
  /// Selection pressure of the linear ranking (1 < s <= 2).
  double ranking_pressure = 1.8;
  /// Number of elite individuals never replaced or mutated.
  int elite_count = 2;

  /// Seed the initial population with deterministic heuristics (weighted
  /// area-knapsack greedies and all-software) besides the random genomes.
  bool seed_heuristic_individuals = true;
  /// Hill-climbing passes over the best individual after convergence
  /// (memetic polish): every gene tries all its candidates, improvements
  /// stick; stops early at a fixpoint.
  int final_hill_climb_passes = 4;
  /// For genomes up to this many genes, additionally run exhaustive
  /// pairwise (2-opt) improvement — escapes the coordinated-swap local
  /// optima that greedy-density seeds produce on tiny instances.
  int final_two_opt_max_genes = 16;

  /// Memoise fitness by genome: concentrated populations re-evaluate the
  /// same mapping strings constantly; caching skips the (scheduling + DVS)
  /// inner loop for repeats. Disable to measure raw evaluation counts.
  bool memoize_evaluations = true;
  /// Upper bound on memoised genomes; the oldest entries are evicted
  /// first (FIFO). 0 = unbounded (pre-existing behaviour, grows without
  /// limit on long runs).
  std::size_t memoize_cache_capacity = 1 << 16;

  /// Memoise the inner loop *per mode* (see energy/evaluator.hpp's
  /// ModeEvalCache): crossover and mutation usually change only a few
  /// modes' gene slices, so most of an offspring's modes can skip
  /// scheduling + DVS even when the whole genome is new. Results are
  /// bitwise-identical with the cache on or off; only the wall clock and
  /// the hit-rate counters differ.
  bool memoize_mode_evaluations = true;
  /// Upper bound on memoised (mode, slice, allocation) entries, FIFO
  /// eviction. 0 = unbounded.
  std::size_t mode_cache_capacity = 1 << 16;

  /// Fitness-evaluation concurrency: 1 = serial (default), 0 = all
  /// hardware threads, otherwise the exact thread count. Results are
  /// bit-identical for every value — evaluation is pure and the GA's RNG
  /// never runs inside the parallel region (see DESIGN.md §8).
  int num_threads = 1;

  /// Random-stream engine. The default counter-based generator (Threefry)
  /// derives every draw from (seed, counter) alone, so streams are
  /// reproducible across checkpoint/resume and any `num_threads` by
  /// construction. Set to RngKind::kXoshiro to reproduce the historic
  /// xoshiro256** streams of earlier releases bit-for-bit (see DESIGN.md
  /// §12). Part of the checkpoint fingerprint: resuming a run under a
  /// different engine is rejected.
  RngKind rng = RngKind::kThreefry;

  /// Threefry stream id of this GA's random stream (see rng_streams in
  /// common/rng.hpp). Stream 0 — the default — is the legacy
  /// single-population stream; the island driver gives every island its
  /// own kIsland-domain stream, so island trajectories are a pure
  /// function of (seed, island) and disjoint from the base stream by
  /// construction. Nonzero values require the Threefry engine. Part of
  /// the checkpoint fingerprint: an island checkpoint cannot be resumed
  /// into a different island slot (or into a single-population run).
  std::uint64_t rng_stream = 0;

  /// Shut-down improvement probability per individual per generation.
  double shutdown_improvement_rate = 0.02;
  /// Generations of all-infeasible populations that trigger the area /
  /// timing / transition improvement sweeps.
  int infeasibility_trigger = 4;
  /// Fraction of the (non-elite) population rewritten by a triggered
  /// improvement sweep.
  double improvement_sweep_fraction = 0.25;
};

/// Progress snapshot handed to the optional per-generation observer.
struct GaProgress {
  int generation = 0;
  double best_fitness = 0.0;
  double best_power_true = 0.0;
  double diversity = 0.0;
  long evaluations = 0;
  /// Memoisation-cache hits / lookups so far (hits == 0 when disabled).
  long cache_hits = 0;
  long cache_lookups = 0;
  /// Per-mode incremental-evaluation cache counters (see GaOptions::
  /// memoize_mode_evaluations); lookups stay 0 when the cache is off.
  long mode_cache_hits = 0;
  long mode_cache_lookups = 0;
};

/// Why a run ended early (`SynthesisResult::partial`). Typed so service
/// layers can report budget exhaustion as a recoverable per-job outcome
/// (the job still carries the fine-DVS partial result) instead of
/// inferring the cause from exit codes; the CLI keeps mapping every
/// early stop to exit 3 regardless of the reason (pinned behaviour).
enum class StopReason : std::uint8_t {
  kNone = 0,          ///< ran to convergence / generation cap
  kCancelled,         ///< cooperative cancellation (signal, watchdog, drain)
  kBudgetExhausted,   ///< RunControl wall-clock budget expired
};

/// Synthesis outcome.
struct SynthesisResult {
  MultiModeMapping mapping;
  CoreAllocation cores;
  /// Final evaluation of the best candidate (reporting configuration).
  Evaluation evaluation;
  double fitness = 0.0;
  int generations = 0;
  long evaluations = 0;
  /// Memoisation-cache hits / lookups over the whole run.
  long cache_hits = 0;
  long cache_lookups = 0;
  /// Per-mode incremental-evaluation cache hits / lookups over the run
  /// (both 0 when GaOptions::memoize_mode_evaluations is off).
  long mode_cache_hits = 0;
  long mode_cache_lookups = 0;
  /// Schedule-stage cache hits / lookups (the stage-granular tier of the
  /// same memo: a hit reuses the list-scheduling artifact and re-runs
  /// only serialization/DVS/aggregation). Probed only on whole-mode
  /// misses, so lookups <= mode_cache_lookups - mode_cache_hits.
  long schedule_cache_hits = 0;
  long schedule_cache_lookups = 0;
  double elapsed_seconds = 0.0;
  /// True when the run was stopped early (cancellation or time budget)
  /// rather than running to convergence; the evaluation still prices the
  /// best individual found so far.
  bool partial = false;
  /// Why the run stopped early; kNone exactly when `partial` is false.
  StopReason stop_reason = StopReason::kNone;
};

/// The multi-mode mapping GA. The evaluator decides whether DVS is applied
/// inside the loop and which mode weights the objective uses.
class MappingGa {
public:
  MappingGa(const System& system, const Evaluator& evaluator,
            FitnessParams fitness_params, AllocationOptions alloc_options,
            GaOptions options, std::uint64_t seed);
  ~MappingGa();

  /// Runs to convergence. `observer` (optional) is invoked once per
  /// generation. `control` (optional) adds time-budget / cancellation
  /// checks and periodic checkpoints at generation boundaries (see
  /// core/run_control.hpp); a controlled stop returns the best individual
  /// found so far with `SynthesisResult::partial` set.
  [[nodiscard]] SynthesisResult run(
      const std::function<void(const GaProgress&)>& observer = {},
      RunControl* control = nullptr);

  /// Restores the state captured by a checkpoint so the next run()
  /// continues bit-identically to the uninterrupted run. Throws
  /// CheckpointError when the snapshot's fingerprint does not match this
  /// GA's configuration (different seed, options, or system).
  void restore(const GaSnapshot& snapshot);

  /// Fingerprint of everything that shapes the GA trajectory: seed,
  /// options, genome structure, fitness params, and evaluator weights.
  /// Stored in checkpoints; resume refuses a mismatch.
  [[nodiscard]] std::uint64_t state_fingerprint() const;

  /// Objective-aware greedy seed: for each hardware PE, selects the task
  /// types with the best weighted-energy-saving per area (a knapsack on
  /// the core area) and maps those types' tasks into hardware, the rest
  /// onto their cheapest software candidate. `mode_weights` (normalised
  /// internally; empty = the evaluator's weights) chooses the objective;
  /// the GA seeds itself with the greedy of its own objective, of the
  /// uniform objective and of the true-Ψ objective, so no run depends on
  /// seed luck. Exposed for tests and diagnostics.
  [[nodiscard]] Genome knapsack_seed_genome(
      std::vector<double> mode_weights = {}) const;
  /// All-software seed (lowest-energy software candidate per task).
  [[nodiscard]] Genome software_seed_genome() const;

  [[nodiscard]] const GenomeCodec& codec() const { return codec_; }

  /// The per-mode memo this GA fills during its run. Exposed so the
  /// synthesis driver can hand the warm cache to the final (fine-DVS)
  /// evaluation, whose schedule-stage keys match the GA's — the final
  /// evaluation then skips list scheduling entirely.
  [[nodiscard]] ModeEvalCache& mode_cache() { return mode_cache_; }

  // ---- Island-stepping interface (DESIGN.md §14) ------------------------
  //
  // run() is exactly `start_loop` + `step_generation` until it returns
  // false (or the caller stops) + `finish_loop` + `harvest`. IslandGa
  // drives the same pieces, inserting migration barriers between
  // fixed-length blocks of step_generation calls — which is why the loop
  // state lives in an explicit struct instead of run()'s stack frame.
  // Internal API: exposed for the island driver and its tests, not a
  // stability surface.

  struct Individual {
    Genome genome;
    double fitness = 0.0;
    /// Normalised constraint violation (0 == feasible); ranking is
    /// feasible-first (see candidate_better).
    double violation = 0.0;
    bool evaluated = false;
    bool area_infeasible = false;
    bool timing_infeasible = false;
    bool transition_infeasible = false;
    double power_true = 0.0;
  };

  /// Everything run() used to keep on its stack between generations.
  struct LoopState {
    Individual best;
    int stagnation = 0;
    int area_infeasible_streak = 0;
    int timing_infeasible_streak = 0;
    int transition_infeasible_streak = 0;
    /// The generation about to run (== generations completed so far).
    int generation = 0;
    int start_generation = 0;
    bool partial = false;
    /// Typed cause of `partial` (see StopReason).
    StopReason stop_reason = StopReason::kNone;
    /// The convergence criterion fired; step_generation refuses to run.
    bool converged = false;
    /// Wall-clock seconds spent before a resumed checkpoint.
    double elapsed_base = 0.0;
    std::chrono::steady_clock::time_point t_begin{};
  };

  /// Initialises (or, after restore(), replays) the population and loop
  /// bookkeeping and starts the wall clock.
  void start_loop(LoopState& st);

  /// Runs one generation: evaluate, rank, update best, check convergence,
  /// breed, mutate, immigrate, improve. Returns false — without advancing
  /// `st.generation` — when the convergence criterion fires (st.converged
  /// is then set) or when the generation cap is already reached.
  bool step_generation(LoopState& st,
                       const std::function<void(const GaProgress&)>&
                           observer = {});

  /// Post-loop phases: fallback evaluation of the strongest seed when the
  /// loop never evaluated anything, then the memetic polish (hill climb +
  /// small-genome 2-opt), honouring `control` cancellation between trial
  /// batches.
  void finish_loop(LoopState& st, RunControl* control = nullptr);

  /// Assembles the SynthesisResult (decode + final loop-evaluator pricing
  /// of the best individual, plus every counter).
  [[nodiscard]] SynthesisResult harvest(const LoopState& st);

  /// Total elapsed wall-clock seconds of this loop, spanning resumes.
  [[nodiscard]] double loop_elapsed(const LoopState& st) const;

  /// The checkpoint snapshot of the state entering `st.generation`.
  [[nodiscard]] GaSnapshot snapshot(const LoopState& st) const;

  /// Migration hooks: ranked population access (slot 0 = current best
  /// after the last evaluation; the first elite_count slots are the
  /// elite) and migrant installation. Installing copies the individual
  /// wholesale — an evaluated migrant keeps its fitness and is not
  /// re-evaluated, exactly as if it had been bred locally.
  [[nodiscard]] const Individual& population_at(int slot) const;
  void install_individual(int slot, Individual migrant);
  [[nodiscard]] int population_size() const {
    return static_cast<int>(population_.size());
  }

  /// Counter accessors for cross-island aggregation.
  [[nodiscard]] long evaluations() const { return evaluations_; }
  [[nodiscard]] long cache_hits() const { return cache_hits_; }
  [[nodiscard]] long cache_lookups() const { return cache_lookups_; }

private:
  /// Fitness memo entry / result of one pure evaluation.
  struct CachedFitness {
    double fitness;
    double violation;
    bool area_infeasible;
    bool timing_infeasible;
    bool transition_infeasible;
    double power_true;
  };

  /// The pure (thread-safe) part of an evaluation: decode, allocate
  /// cores, schedule + DVS, fitness. Touches no GA state.
  [[nodiscard]] CachedFitness compute_fitness(const Genome& genome) const;

  /// Fitness/violation/feasibility bookkeeping from a finished evaluation.
  [[nodiscard]] CachedFitness finish_fitness(const Evaluation& eval) const;

  /// True when evaluations should run through the per-mode cache (the
  /// option is on and the evaluator keeps no schedules, which the cache
  /// cannot store).
  [[nodiscard]] bool mode_cache_active() const;

  /// Evaluates every individual in `batch`, fanning cache misses out over
  /// the worker pool. Deterministic contract: cache lookups, insertions
  /// and counter updates happen serially in batch order, only the pure
  /// per-genome (or, with the mode cache, per-mode) computation runs
  /// concurrently — results are bit-identical to the serial path for any
  /// thread count.
  void evaluate_batch(const std::vector<Individual*>& batch);

  /// Mode-cache-aware evaluation of the unique-genome jobs of one batch:
  /// decode/allocate/key in parallel, look the per-mode memo up serially
  /// (with in-flight dedup so two jobs sharing a slice schedule it once),
  /// run the missing inner loops in parallel, then assemble + insert
  /// serially in job order. Fills `results[j]` for every job.
  void evaluate_jobs_incremental(const std::vector<const Genome*>& jobs,
                                 std::vector<CachedFitness>& results);

  void evaluate(Individual& ind);
  void cache_insert(const Genome& genome, const CachedFitness& value);
  [[nodiscard]] double population_diversity() const;

  const System& system_;
  const Evaluator& evaluator_;
  FitnessParams fitness_params_;
  AllocationOptions alloc_options_;
  GaOptions options_;
  GenomeCodec codec_;
  std::uint64_t seed_;
  Rng rng_;
  std::vector<Individual> population_;
  long evaluations_ = 0;
  long cache_hits_ = 0;
  long cache_lookups_ = 0;

  /// Restored checkpoint state consumed by the next run(); null when
  /// starting fresh (see restore()).
  std::unique_ptr<GaSnapshot> restored_;

  /// Worker pool for evaluate_batch; null when num_threads resolves to 1.
  std::unique_ptr<ThreadPool> pool_;

  /// Fitness memo keyed by genome (see GaOptions::memoize_evaluations),
  /// bounded by memoize_cache_capacity with FIFO eviction (cache_order_
  /// tracks insertion order).
  std::unordered_map<Genome, CachedFitness, GenomeHash> cache_;
  std::deque<Genome> cache_order_;

  /// Per-mode inner-loop memo (see GaOptions::memoize_mode_evaluations).
  /// Touched only in the serial phases of evaluate_batch; checkpointed in
  /// insertion order so a resumed run replays hits and FIFO eviction
  /// bit-identically.
  ModeEvalCache mode_cache_;
};

}  // namespace mmsyn
