#include "core/improvement.hpp"

#include <algorithm>
#include <vector>

#include "model/system.hpp"

namespace mmsyn {
namespace {

/// Flat gene positions of mode `m` currently mapped onto `pe`.
std::vector<std::size_t> genes_on_pe(const Genome& genome,
                                     const GenomeCodec& codec, ModeId m,
                                     PeId pe) {
  std::vector<std::size_t> result;
  const std::size_t begin = codec.mode_gene_begin(m);
  const std::size_t count = codec.mode_gene_count(m);
  for (std::size_t g = begin; g < begin + count; ++g)
    if (codec.pe_at(genome, g) == pe) result.push_back(g);
  return result;
}

/// Re-maps gene `g` to a uniformly random candidate other than `avoid`.
/// Returns false when no alternative exists.
bool remap_away(Genome& genome, const GenomeCodec& codec, std::size_t g,
                PeId avoid, Rng& rng) {
  const auto& cands = codec.candidates(g);
  std::vector<std::uint16_t> options;
  for (std::size_t i = 0; i < cands.size(); ++i)
    if (cands[i] != avoid) options.push_back(static_cast<std::uint16_t>(i));
  if (options.empty()) return false;
  genome[g] = rng.pick(options);
  return true;
}

}  // namespace

bool shutdown_improvement(Genome& genome, const GenomeCodec& codec,
                          const System& system, Rng& rng) {
  if (system.arch.pe_count() < 2 || codec.mode_count() == 0) return false;
  // Random mode, then scan PEs in random order for a non-essential one.
  const ModeId mode{static_cast<ModeId::value_type>(
      rng.pick_index(codec.mode_count()))};
  std::vector<PeId> pes = system.arch.pe_ids();
  rng.shuffle(pes);
  for (PeId pe : pes) {
    const auto genes = genes_on_pe(genome, codec, mode, pe);
    if (genes.empty()) continue;  // already off in this mode
    // Non-essential: every hosted task has an alternative candidate.
    const bool non_essential =
        std::all_of(genes.begin(), genes.end(), [&](std::size_t g) {
          return codec.candidates(g).size() >= 2;
        });
    if (!non_essential) continue;
    for (std::size_t g : genes) remap_away(genome, codec, g, pe, rng);
    return true;
  }
  return false;
}

bool area_improvement(Genome& genome, const GenomeCodec& codec,
                      const System& system, Rng& rng) {
  // Hardware PEs hosting at least one gene, in random order.
  std::vector<PeId> hw;
  for (PeId p : system.arch.pe_ids())
    if (is_hardware(system.arch.pe(p).kind)) hw.push_back(p);
  if (hw.empty()) return false;
  rng.shuffle(hw);
  for (PeId pe : hw) {
    bool changed = false;
    for (std::size_t g = 0; g < codec.genome_length(); ++g) {
      if (codec.pe_at(genome, g) != pe) continue;
      if (!rng.chance(0.5)) continue;
      // Prefer software candidates; fall back to any alternative.
      const auto& cands = codec.candidates(g);
      std::vector<std::uint16_t> sw;
      for (std::size_t i = 0; i < cands.size(); ++i)
        if (is_software(system.arch.pe(cands[i]).kind))
          sw.push_back(static_cast<std::uint16_t>(i));
      if (sw.empty()) continue;
      genome[g] = rng.pick(sw);
      changed = true;
    }
    if (changed) return true;
  }
  return false;
}

bool timing_improvement(Genome& genome, const GenomeCodec& codec,
                        const System& system, Rng& rng) {
  bool changed = false;
  for (std::size_t g = 0; g < codec.genome_length(); ++g) {
    const PeId current = codec.pe_at(genome, g);
    if (!is_software(system.arch.pe(current).kind)) continue;
    if (!rng.chance(0.3)) continue;
    const ModeId mode = codec.mode_of_gene(g);
    const TaskId task = codec.task_of_gene(g);
    const TaskTypeId type = system.omsm.mode(mode).graph.task(task).type;
    const double current_time =
        system.tech.require(type, current).exec_time;
    const auto& cands = codec.candidates(g);
    std::vector<std::uint16_t> faster_hw;
    for (std::size_t i = 0; i < cands.size(); ++i) {
      if (!is_hardware(system.arch.pe(cands[i]).kind)) continue;
      if (system.tech.require(type, cands[i]).exec_time < current_time)
        faster_hw.push_back(static_cast<std::uint16_t>(i));
    }
    if (faster_hw.empty()) continue;
    genome[g] = rng.pick(faster_hw);
    changed = true;
  }
  return changed;
}

bool transition_improvement(Genome& genome, const GenomeCodec& codec,
                            const System& system, Rng& rng) {
  std::vector<PeId> fpgas;
  for (PeId p : system.arch.pe_ids())
    if (system.arch.pe(p).kind == PeKind::kFpga) fpgas.push_back(p);
  if (fpgas.empty() || codec.mode_count() == 0) return false;
  const PeId fpga = rng.pick(fpgas);
  const ModeId mode{static_cast<ModeId::value_type>(
      rng.pick_index(codec.mode_count()))};
  bool changed = false;
  for (std::size_t g : genes_on_pe(genome, codec, mode, fpga))
    if (rng.chance(0.5) && remap_away(genome, codec, g, fpga, rng))
      changed = true;
  return changed;
}

}  // namespace mmsyn
