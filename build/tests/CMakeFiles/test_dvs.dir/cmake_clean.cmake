file(REMOVE_RECURSE
  "CMakeFiles/test_dvs.dir/dvs/dvs_graph_test.cpp.o"
  "CMakeFiles/test_dvs.dir/dvs/dvs_graph_test.cpp.o.d"
  "CMakeFiles/test_dvs.dir/dvs/pv_dvs_test.cpp.o"
  "CMakeFiles/test_dvs.dir/dvs/pv_dvs_test.cpp.o.d"
  "CMakeFiles/test_dvs.dir/dvs/voltage_model_param_test.cpp.o"
  "CMakeFiles/test_dvs.dir/dvs/voltage_model_param_test.cpp.o.d"
  "CMakeFiles/test_dvs.dir/dvs/voltage_model_test.cpp.o"
  "CMakeFiles/test_dvs.dir/dvs/voltage_model_test.cpp.o.d"
  "CMakeFiles/test_dvs.dir/dvs/voltage_schedule_test.cpp.o"
  "CMakeFiles/test_dvs.dir/dvs/voltage_schedule_test.cpp.o.d"
  "test_dvs"
  "test_dvs.pdb"
  "test_dvs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
