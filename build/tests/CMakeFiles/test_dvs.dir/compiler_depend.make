# Empty compiler generated dependencies file for test_dvs.
# This may be replaced when dependencies are built.
