file(REMOVE_RECURSE
  "CMakeFiles/test_model.dir/model/architecture_test.cpp.o"
  "CMakeFiles/test_model.dir/model/architecture_test.cpp.o.d"
  "CMakeFiles/test_model.dir/model/core_allocation_test.cpp.o"
  "CMakeFiles/test_model.dir/model/core_allocation_test.cpp.o.d"
  "CMakeFiles/test_model.dir/model/io_test.cpp.o"
  "CMakeFiles/test_model.dir/model/io_test.cpp.o.d"
  "CMakeFiles/test_model.dir/model/mapping_io_test.cpp.o"
  "CMakeFiles/test_model.dir/model/mapping_io_test.cpp.o.d"
  "CMakeFiles/test_model.dir/model/omsm_test.cpp.o"
  "CMakeFiles/test_model.dir/model/omsm_test.cpp.o.d"
  "CMakeFiles/test_model.dir/model/system_test.cpp.o"
  "CMakeFiles/test_model.dir/model/system_test.cpp.o.d"
  "CMakeFiles/test_model.dir/model/task_graph_test.cpp.o"
  "CMakeFiles/test_model.dir/model/task_graph_test.cpp.o.d"
  "CMakeFiles/test_model.dir/model/tech_library_test.cpp.o"
  "CMakeFiles/test_model.dir/model/tech_library_test.cpp.o.d"
  "test_model"
  "test_model.pdb"
  "test_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
