
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/flags_test.cpp" "tests/CMakeFiles/test_common.dir/common/flags_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/flags_test.cpp.o.d"
  "/root/repo/tests/common/ids_test.cpp" "tests/CMakeFiles/test_common.dir/common/ids_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/ids_test.cpp.o.d"
  "/root/repo/tests/common/rng_test.cpp" "tests/CMakeFiles/test_common.dir/common/rng_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/rng_test.cpp.o.d"
  "/root/repo/tests/common/stats_test.cpp" "tests/CMakeFiles/test_common.dir/common/stats_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/stats_test.cpp.o.d"
  "/root/repo/tests/common/table_test.cpp" "tests/CMakeFiles/test_common.dir/common/table_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/table_test.cpp.o.d"
  "/root/repo/tests/common/thread_pool_test.cpp" "tests/CMakeFiles/test_common.dir/common/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/thread_pool_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mmsyn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tgff/CMakeFiles/mmsyn_tgff.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/mmsyn_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/dvs/CMakeFiles/mmsyn_dvs.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mmsyn_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mmsyn_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mmsyn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
