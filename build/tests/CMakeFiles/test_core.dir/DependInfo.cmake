
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/allocation_builder_test.cpp" "tests/CMakeFiles/test_core.dir/core/allocation_builder_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/allocation_builder_test.cpp.o.d"
  "/root/repo/tests/core/cosynth_test.cpp" "tests/CMakeFiles/test_core.dir/core/cosynth_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/cosynth_test.cpp.o.d"
  "/root/repo/tests/core/fitness_test.cpp" "tests/CMakeFiles/test_core.dir/core/fitness_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/fitness_test.cpp.o.d"
  "/root/repo/tests/core/ga_test.cpp" "tests/CMakeFiles/test_core.dir/core/ga_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/ga_test.cpp.o.d"
  "/root/repo/tests/core/genome_test.cpp" "tests/CMakeFiles/test_core.dir/core/genome_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/genome_test.cpp.o.d"
  "/root/repo/tests/core/improvement_test.cpp" "tests/CMakeFiles/test_core.dir/core/improvement_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/improvement_test.cpp.o.d"
  "/root/repo/tests/core/parallel_eval_test.cpp" "tests/CMakeFiles/test_core.dir/core/parallel_eval_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/parallel_eval_test.cpp.o.d"
  "/root/repo/tests/core/report_test.cpp" "tests/CMakeFiles/test_core.dir/core/report_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/report_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mmsyn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tgff/CMakeFiles/mmsyn_tgff.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/mmsyn_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/dvs/CMakeFiles/mmsyn_dvs.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mmsyn_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mmsyn_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mmsyn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
