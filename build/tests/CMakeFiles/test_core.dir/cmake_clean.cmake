file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/allocation_builder_test.cpp.o"
  "CMakeFiles/test_core.dir/core/allocation_builder_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/cosynth_test.cpp.o"
  "CMakeFiles/test_core.dir/core/cosynth_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/fitness_test.cpp.o"
  "CMakeFiles/test_core.dir/core/fitness_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/ga_test.cpp.o"
  "CMakeFiles/test_core.dir/core/ga_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/genome_test.cpp.o"
  "CMakeFiles/test_core.dir/core/genome_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/improvement_test.cpp.o"
  "CMakeFiles/test_core.dir/core/improvement_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/parallel_eval_test.cpp.o"
  "CMakeFiles/test_core.dir/core/parallel_eval_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/report_test.cpp.o"
  "CMakeFiles/test_core.dir/core/report_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
