file(REMOVE_RECURSE
  "CMakeFiles/test_tgff.dir/tgff/generator_test.cpp.o"
  "CMakeFiles/test_tgff.dir/tgff/generator_test.cpp.o.d"
  "CMakeFiles/test_tgff.dir/tgff/motivational_test.cpp.o"
  "CMakeFiles/test_tgff.dir/tgff/motivational_test.cpp.o.d"
  "CMakeFiles/test_tgff.dir/tgff/smart_phone_test.cpp.o"
  "CMakeFiles/test_tgff.dir/tgff/smart_phone_test.cpp.o.d"
  "CMakeFiles/test_tgff.dir/tgff/suites_test.cpp.o"
  "CMakeFiles/test_tgff.dir/tgff/suites_test.cpp.o.d"
  "CMakeFiles/test_tgff.dir/tgff/tension_test.cpp.o"
  "CMakeFiles/test_tgff.dir/tgff/tension_test.cpp.o.d"
  "test_tgff"
  "test_tgff.pdb"
  "test_tgff[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tgff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
