# Empty dependencies file for test_tgff.
# This may be replaced when dependencies are built.
