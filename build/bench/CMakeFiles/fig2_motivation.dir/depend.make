# Empty dependencies file for fig2_motivation.
# This may be replaced when dependencies are built.
