
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/parallel_scaling.cpp" "bench/CMakeFiles/parallel_scaling.dir/parallel_scaling.cpp.o" "gcc" "bench/CMakeFiles/parallel_scaling.dir/parallel_scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mmsyn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tgff/CMakeFiles/mmsyn_tgff.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/mmsyn_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/dvs/CMakeFiles/mmsyn_dvs.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mmsyn_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mmsyn_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mmsyn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
