# Empty dependencies file for table2_dvs.
# This may be replaced when dependencies are built.
