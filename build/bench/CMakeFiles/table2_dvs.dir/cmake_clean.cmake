file(REMOVE_RECURSE
  "CMakeFiles/table2_dvs.dir/table2_dvs.cpp.o"
  "CMakeFiles/table2_dvs.dir/table2_dvs.cpp.o.d"
  "table2_dvs"
  "table2_dvs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_dvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
