file(REMOVE_RECURSE
  "CMakeFiles/table3_smartphone.dir/table3_smartphone.cpp.o"
  "CMakeFiles/table3_smartphone.dir/table3_smartphone.cpp.o.d"
  "table3_smartphone"
  "table3_smartphone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_smartphone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
