# Empty dependencies file for table3_smartphone.
# This may be replaced when dependencies are built.
