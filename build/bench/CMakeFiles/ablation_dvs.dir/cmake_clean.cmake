file(REMOVE_RECURSE
  "CMakeFiles/ablation_dvs.dir/ablation_dvs.cpp.o"
  "CMakeFiles/ablation_dvs.dir/ablation_dvs.cpp.o.d"
  "ablation_dvs"
  "ablation_dvs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
