file(REMOVE_RECURSE
  "CMakeFiles/seed_scan.dir/seed_scan.cpp.o"
  "CMakeFiles/seed_scan.dir/seed_scan.cpp.o.d"
  "seed_scan"
  "seed_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seed_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
