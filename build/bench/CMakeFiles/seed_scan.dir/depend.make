# Empty dependencies file for seed_scan.
# This may be replaced when dependencies are built.
