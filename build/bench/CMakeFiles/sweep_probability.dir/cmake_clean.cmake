file(REMOVE_RECURSE
  "CMakeFiles/sweep_probability.dir/sweep_probability.cpp.o"
  "CMakeFiles/sweep_probability.dir/sweep_probability.cpp.o.d"
  "sweep_probability"
  "sweep_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
