# Empty compiler generated dependencies file for sweep_probability.
# This may be replaced when dependencies are built.
