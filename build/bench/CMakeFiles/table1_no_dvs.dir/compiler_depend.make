# Empty compiler generated dependencies file for table1_no_dvs.
# This may be replaced when dependencies are built.
