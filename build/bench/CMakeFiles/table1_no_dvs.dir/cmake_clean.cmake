file(REMOVE_RECURSE
  "CMakeFiles/table1_no_dvs.dir/table1_no_dvs.cpp.o"
  "CMakeFiles/table1_no_dvs.dir/table1_no_dvs.cpp.o.d"
  "table1_no_dvs"
  "table1_no_dvs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_no_dvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
