file(REMOVE_RECURSE
  "CMakeFiles/fig3_multi_impl.dir/fig3_multi_impl.cpp.o"
  "CMakeFiles/fig3_multi_impl.dir/fig3_multi_impl.cpp.o.d"
  "fig3_multi_impl"
  "fig3_multi_impl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_multi_impl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
