# Empty dependencies file for fig3_multi_impl.
# This may be replaced when dependencies are built.
