file(REMOVE_RECURSE
  "libmmsyn_core.a"
)
