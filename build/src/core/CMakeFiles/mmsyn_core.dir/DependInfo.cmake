
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allocation_builder.cpp" "src/core/CMakeFiles/mmsyn_core.dir/allocation_builder.cpp.o" "gcc" "src/core/CMakeFiles/mmsyn_core.dir/allocation_builder.cpp.o.d"
  "/root/repo/src/core/cosynth.cpp" "src/core/CMakeFiles/mmsyn_core.dir/cosynth.cpp.o" "gcc" "src/core/CMakeFiles/mmsyn_core.dir/cosynth.cpp.o.d"
  "/root/repo/src/core/fitness.cpp" "src/core/CMakeFiles/mmsyn_core.dir/fitness.cpp.o" "gcc" "src/core/CMakeFiles/mmsyn_core.dir/fitness.cpp.o.d"
  "/root/repo/src/core/ga.cpp" "src/core/CMakeFiles/mmsyn_core.dir/ga.cpp.o" "gcc" "src/core/CMakeFiles/mmsyn_core.dir/ga.cpp.o.d"
  "/root/repo/src/core/genome.cpp" "src/core/CMakeFiles/mmsyn_core.dir/genome.cpp.o" "gcc" "src/core/CMakeFiles/mmsyn_core.dir/genome.cpp.o.d"
  "/root/repo/src/core/improvement.cpp" "src/core/CMakeFiles/mmsyn_core.dir/improvement.cpp.o" "gcc" "src/core/CMakeFiles/mmsyn_core.dir/improvement.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/mmsyn_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/mmsyn_core.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/energy/CMakeFiles/mmsyn_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/dvs/CMakeFiles/mmsyn_dvs.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mmsyn_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mmsyn_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mmsyn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
