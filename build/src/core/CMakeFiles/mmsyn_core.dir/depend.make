# Empty dependencies file for mmsyn_core.
# This may be replaced when dependencies are built.
