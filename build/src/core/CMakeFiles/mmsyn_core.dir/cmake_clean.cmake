file(REMOVE_RECURSE
  "CMakeFiles/mmsyn_core.dir/allocation_builder.cpp.o"
  "CMakeFiles/mmsyn_core.dir/allocation_builder.cpp.o.d"
  "CMakeFiles/mmsyn_core.dir/cosynth.cpp.o"
  "CMakeFiles/mmsyn_core.dir/cosynth.cpp.o.d"
  "CMakeFiles/mmsyn_core.dir/fitness.cpp.o"
  "CMakeFiles/mmsyn_core.dir/fitness.cpp.o.d"
  "CMakeFiles/mmsyn_core.dir/ga.cpp.o"
  "CMakeFiles/mmsyn_core.dir/ga.cpp.o.d"
  "CMakeFiles/mmsyn_core.dir/genome.cpp.o"
  "CMakeFiles/mmsyn_core.dir/genome.cpp.o.d"
  "CMakeFiles/mmsyn_core.dir/improvement.cpp.o"
  "CMakeFiles/mmsyn_core.dir/improvement.cpp.o.d"
  "CMakeFiles/mmsyn_core.dir/report.cpp.o"
  "CMakeFiles/mmsyn_core.dir/report.cpp.o.d"
  "libmmsyn_core.a"
  "libmmsyn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmsyn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
