file(REMOVE_RECURSE
  "CMakeFiles/mmsyn_energy.dir/evaluator.cpp.o"
  "CMakeFiles/mmsyn_energy.dir/evaluator.cpp.o.d"
  "CMakeFiles/mmsyn_energy.dir/simulator.cpp.o"
  "CMakeFiles/mmsyn_energy.dir/simulator.cpp.o.d"
  "libmmsyn_energy.a"
  "libmmsyn_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmsyn_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
