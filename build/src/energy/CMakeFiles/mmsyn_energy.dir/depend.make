# Empty dependencies file for mmsyn_energy.
# This may be replaced when dependencies are built.
