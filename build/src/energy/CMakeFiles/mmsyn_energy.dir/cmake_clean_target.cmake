file(REMOVE_RECURSE
  "libmmsyn_energy.a"
)
