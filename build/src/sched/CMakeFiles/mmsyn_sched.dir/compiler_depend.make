# Empty compiler generated dependencies file for mmsyn_sched.
# This may be replaced when dependencies are built.
