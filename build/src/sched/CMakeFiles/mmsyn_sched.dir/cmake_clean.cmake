file(REMOVE_RECURSE
  "CMakeFiles/mmsyn_sched.dir/gantt.cpp.o"
  "CMakeFiles/mmsyn_sched.dir/gantt.cpp.o.d"
  "CMakeFiles/mmsyn_sched.dir/list_scheduler.cpp.o"
  "CMakeFiles/mmsyn_sched.dir/list_scheduler.cpp.o.d"
  "CMakeFiles/mmsyn_sched.dir/mobility.cpp.o"
  "CMakeFiles/mmsyn_sched.dir/mobility.cpp.o.d"
  "CMakeFiles/mmsyn_sched.dir/timeline.cpp.o"
  "CMakeFiles/mmsyn_sched.dir/timeline.cpp.o.d"
  "CMakeFiles/mmsyn_sched.dir/validate.cpp.o"
  "CMakeFiles/mmsyn_sched.dir/validate.cpp.o.d"
  "libmmsyn_sched.a"
  "libmmsyn_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmsyn_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
