
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/gantt.cpp" "src/sched/CMakeFiles/mmsyn_sched.dir/gantt.cpp.o" "gcc" "src/sched/CMakeFiles/mmsyn_sched.dir/gantt.cpp.o.d"
  "/root/repo/src/sched/list_scheduler.cpp" "src/sched/CMakeFiles/mmsyn_sched.dir/list_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/mmsyn_sched.dir/list_scheduler.cpp.o.d"
  "/root/repo/src/sched/mobility.cpp" "src/sched/CMakeFiles/mmsyn_sched.dir/mobility.cpp.o" "gcc" "src/sched/CMakeFiles/mmsyn_sched.dir/mobility.cpp.o.d"
  "/root/repo/src/sched/timeline.cpp" "src/sched/CMakeFiles/mmsyn_sched.dir/timeline.cpp.o" "gcc" "src/sched/CMakeFiles/mmsyn_sched.dir/timeline.cpp.o.d"
  "/root/repo/src/sched/validate.cpp" "src/sched/CMakeFiles/mmsyn_sched.dir/validate.cpp.o" "gcc" "src/sched/CMakeFiles/mmsyn_sched.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/mmsyn_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mmsyn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
