file(REMOVE_RECURSE
  "libmmsyn_sched.a"
)
