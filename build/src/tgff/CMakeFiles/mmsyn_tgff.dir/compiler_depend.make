# Empty compiler generated dependencies file for mmsyn_tgff.
# This may be replaced when dependencies are built.
