file(REMOVE_RECURSE
  "libmmsyn_tgff.a"
)
