file(REMOVE_RECURSE
  "CMakeFiles/mmsyn_tgff.dir/generator.cpp.o"
  "CMakeFiles/mmsyn_tgff.dir/generator.cpp.o.d"
  "CMakeFiles/mmsyn_tgff.dir/motivational.cpp.o"
  "CMakeFiles/mmsyn_tgff.dir/motivational.cpp.o.d"
  "CMakeFiles/mmsyn_tgff.dir/smart_phone.cpp.o"
  "CMakeFiles/mmsyn_tgff.dir/smart_phone.cpp.o.d"
  "CMakeFiles/mmsyn_tgff.dir/suites.cpp.o"
  "CMakeFiles/mmsyn_tgff.dir/suites.cpp.o.d"
  "libmmsyn_tgff.a"
  "libmmsyn_tgff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmsyn_tgff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
