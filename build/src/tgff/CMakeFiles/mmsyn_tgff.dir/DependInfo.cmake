
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tgff/generator.cpp" "src/tgff/CMakeFiles/mmsyn_tgff.dir/generator.cpp.o" "gcc" "src/tgff/CMakeFiles/mmsyn_tgff.dir/generator.cpp.o.d"
  "/root/repo/src/tgff/motivational.cpp" "src/tgff/CMakeFiles/mmsyn_tgff.dir/motivational.cpp.o" "gcc" "src/tgff/CMakeFiles/mmsyn_tgff.dir/motivational.cpp.o.d"
  "/root/repo/src/tgff/smart_phone.cpp" "src/tgff/CMakeFiles/mmsyn_tgff.dir/smart_phone.cpp.o" "gcc" "src/tgff/CMakeFiles/mmsyn_tgff.dir/smart_phone.cpp.o.d"
  "/root/repo/src/tgff/suites.cpp" "src/tgff/CMakeFiles/mmsyn_tgff.dir/suites.cpp.o" "gcc" "src/tgff/CMakeFiles/mmsyn_tgff.dir/suites.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/mmsyn_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mmsyn_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mmsyn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
