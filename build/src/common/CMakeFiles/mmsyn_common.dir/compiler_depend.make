# Empty compiler generated dependencies file for mmsyn_common.
# This may be replaced when dependencies are built.
