# Empty dependencies file for mmsyn_common.
# This may be replaced when dependencies are built.
