file(REMOVE_RECURSE
  "CMakeFiles/mmsyn_common.dir/flags.cpp.o"
  "CMakeFiles/mmsyn_common.dir/flags.cpp.o.d"
  "CMakeFiles/mmsyn_common.dir/rng.cpp.o"
  "CMakeFiles/mmsyn_common.dir/rng.cpp.o.d"
  "CMakeFiles/mmsyn_common.dir/table.cpp.o"
  "CMakeFiles/mmsyn_common.dir/table.cpp.o.d"
  "CMakeFiles/mmsyn_common.dir/thread_pool.cpp.o"
  "CMakeFiles/mmsyn_common.dir/thread_pool.cpp.o.d"
  "libmmsyn_common.a"
  "libmmsyn_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmsyn_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
