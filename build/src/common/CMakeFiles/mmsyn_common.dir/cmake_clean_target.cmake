file(REMOVE_RECURSE
  "libmmsyn_common.a"
)
