file(REMOVE_RECURSE
  "CMakeFiles/mmsyn_model.dir/architecture.cpp.o"
  "CMakeFiles/mmsyn_model.dir/architecture.cpp.o.d"
  "CMakeFiles/mmsyn_model.dir/core_allocation.cpp.o"
  "CMakeFiles/mmsyn_model.dir/core_allocation.cpp.o.d"
  "CMakeFiles/mmsyn_model.dir/io.cpp.o"
  "CMakeFiles/mmsyn_model.dir/io.cpp.o.d"
  "CMakeFiles/mmsyn_model.dir/mapping.cpp.o"
  "CMakeFiles/mmsyn_model.dir/mapping.cpp.o.d"
  "CMakeFiles/mmsyn_model.dir/mapping_io.cpp.o"
  "CMakeFiles/mmsyn_model.dir/mapping_io.cpp.o.d"
  "CMakeFiles/mmsyn_model.dir/omsm.cpp.o"
  "CMakeFiles/mmsyn_model.dir/omsm.cpp.o.d"
  "CMakeFiles/mmsyn_model.dir/system.cpp.o"
  "CMakeFiles/mmsyn_model.dir/system.cpp.o.d"
  "CMakeFiles/mmsyn_model.dir/task_graph.cpp.o"
  "CMakeFiles/mmsyn_model.dir/task_graph.cpp.o.d"
  "CMakeFiles/mmsyn_model.dir/tech_library.cpp.o"
  "CMakeFiles/mmsyn_model.dir/tech_library.cpp.o.d"
  "libmmsyn_model.a"
  "libmmsyn_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmsyn_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
