file(REMOVE_RECURSE
  "libmmsyn_model.a"
)
