
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/architecture.cpp" "src/model/CMakeFiles/mmsyn_model.dir/architecture.cpp.o" "gcc" "src/model/CMakeFiles/mmsyn_model.dir/architecture.cpp.o.d"
  "/root/repo/src/model/core_allocation.cpp" "src/model/CMakeFiles/mmsyn_model.dir/core_allocation.cpp.o" "gcc" "src/model/CMakeFiles/mmsyn_model.dir/core_allocation.cpp.o.d"
  "/root/repo/src/model/io.cpp" "src/model/CMakeFiles/mmsyn_model.dir/io.cpp.o" "gcc" "src/model/CMakeFiles/mmsyn_model.dir/io.cpp.o.d"
  "/root/repo/src/model/mapping.cpp" "src/model/CMakeFiles/mmsyn_model.dir/mapping.cpp.o" "gcc" "src/model/CMakeFiles/mmsyn_model.dir/mapping.cpp.o.d"
  "/root/repo/src/model/mapping_io.cpp" "src/model/CMakeFiles/mmsyn_model.dir/mapping_io.cpp.o" "gcc" "src/model/CMakeFiles/mmsyn_model.dir/mapping_io.cpp.o.d"
  "/root/repo/src/model/omsm.cpp" "src/model/CMakeFiles/mmsyn_model.dir/omsm.cpp.o" "gcc" "src/model/CMakeFiles/mmsyn_model.dir/omsm.cpp.o.d"
  "/root/repo/src/model/system.cpp" "src/model/CMakeFiles/mmsyn_model.dir/system.cpp.o" "gcc" "src/model/CMakeFiles/mmsyn_model.dir/system.cpp.o.d"
  "/root/repo/src/model/task_graph.cpp" "src/model/CMakeFiles/mmsyn_model.dir/task_graph.cpp.o" "gcc" "src/model/CMakeFiles/mmsyn_model.dir/task_graph.cpp.o.d"
  "/root/repo/src/model/tech_library.cpp" "src/model/CMakeFiles/mmsyn_model.dir/tech_library.cpp.o" "gcc" "src/model/CMakeFiles/mmsyn_model.dir/tech_library.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mmsyn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
