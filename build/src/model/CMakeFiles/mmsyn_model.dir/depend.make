# Empty dependencies file for mmsyn_model.
# This may be replaced when dependencies are built.
