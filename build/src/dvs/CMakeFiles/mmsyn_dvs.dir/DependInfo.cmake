
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dvs/dvs_graph.cpp" "src/dvs/CMakeFiles/mmsyn_dvs.dir/dvs_graph.cpp.o" "gcc" "src/dvs/CMakeFiles/mmsyn_dvs.dir/dvs_graph.cpp.o.d"
  "/root/repo/src/dvs/pv_dvs.cpp" "src/dvs/CMakeFiles/mmsyn_dvs.dir/pv_dvs.cpp.o" "gcc" "src/dvs/CMakeFiles/mmsyn_dvs.dir/pv_dvs.cpp.o.d"
  "/root/repo/src/dvs/voltage_model.cpp" "src/dvs/CMakeFiles/mmsyn_dvs.dir/voltage_model.cpp.o" "gcc" "src/dvs/CMakeFiles/mmsyn_dvs.dir/voltage_model.cpp.o.d"
  "/root/repo/src/dvs/voltage_schedule.cpp" "src/dvs/CMakeFiles/mmsyn_dvs.dir/voltage_schedule.cpp.o" "gcc" "src/dvs/CMakeFiles/mmsyn_dvs.dir/voltage_schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/mmsyn_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mmsyn_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mmsyn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
