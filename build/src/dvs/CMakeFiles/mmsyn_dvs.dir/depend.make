# Empty dependencies file for mmsyn_dvs.
# This may be replaced when dependencies are built.
