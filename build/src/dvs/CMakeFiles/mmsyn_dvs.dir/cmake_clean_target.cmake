file(REMOVE_RECURSE
  "libmmsyn_dvs.a"
)
