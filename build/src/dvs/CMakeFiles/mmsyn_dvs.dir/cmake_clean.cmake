file(REMOVE_RECURSE
  "CMakeFiles/mmsyn_dvs.dir/dvs_graph.cpp.o"
  "CMakeFiles/mmsyn_dvs.dir/dvs_graph.cpp.o.d"
  "CMakeFiles/mmsyn_dvs.dir/pv_dvs.cpp.o"
  "CMakeFiles/mmsyn_dvs.dir/pv_dvs.cpp.o.d"
  "CMakeFiles/mmsyn_dvs.dir/voltage_model.cpp.o"
  "CMakeFiles/mmsyn_dvs.dir/voltage_model.cpp.o.d"
  "CMakeFiles/mmsyn_dvs.dir/voltage_schedule.cpp.o"
  "CMakeFiles/mmsyn_dvs.dir/voltage_schedule.cpp.o.d"
  "libmmsyn_dvs.a"
  "libmmsyn_dvs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmsyn_dvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
