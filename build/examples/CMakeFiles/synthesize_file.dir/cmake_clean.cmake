file(REMOVE_RECURSE
  "CMakeFiles/synthesize_file.dir/synthesize_file.cpp.o"
  "CMakeFiles/synthesize_file.dir/synthesize_file.cpp.o.d"
  "synthesize_file"
  "synthesize_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthesize_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
