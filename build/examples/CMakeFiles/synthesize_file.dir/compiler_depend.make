# Empty compiler generated dependencies file for synthesize_file.
# This may be replaced when dependencies are built.
