# Empty compiler generated dependencies file for smart_phone_tour.
# This may be replaced when dependencies are built.
