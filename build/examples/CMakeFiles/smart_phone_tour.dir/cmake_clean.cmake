file(REMOVE_RECURSE
  "CMakeFiles/smart_phone_tour.dir/smart_phone_tour.cpp.o"
  "CMakeFiles/smart_phone_tour.dir/smart_phone_tour.cpp.o.d"
  "smart_phone_tour"
  "smart_phone_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_phone_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
