# Empty compiler generated dependencies file for hw_dvs_transform.
# This may be replaced when dependencies are built.
