file(REMOVE_RECURSE
  "CMakeFiles/hw_dvs_transform.dir/hw_dvs_transform.cpp.o"
  "CMakeFiles/hw_dvs_transform.dir/hw_dvs_transform.cpp.o.d"
  "hw_dvs_transform"
  "hw_dvs_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_dvs_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
