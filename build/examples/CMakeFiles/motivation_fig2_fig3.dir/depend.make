# Empty dependencies file for motivation_fig2_fig3.
# This may be replaced when dependencies are built.
