file(REMOVE_RECURSE
  "CMakeFiles/motivation_fig2_fig3.dir/motivation_fig2_fig3.cpp.o"
  "CMakeFiles/motivation_fig2_fig3.dir/motivation_fig2_fig3.cpp.o.d"
  "motivation_fig2_fig3"
  "motivation_fig2_fig3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation_fig2_fig3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
