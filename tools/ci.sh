#!/usr/bin/env bash
# Full CI pass: plain build + tests, a staged-pipeline divergence gate,
# an AddressSanitizer(+UBSan) build + tests, a standalone UBSan build +
# tests, and the kill-and-resume smoke. Run from the repository root:
#
#   tools/ci.sh            # everything
#   tools/ci.sh --fast     # plain build + tests + divergence gate only
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc)
FAST=${1:-}

echo "== plain build =="
cmake -B build -S . > /dev/null
cmake --build build -j "$JOBS"
echo "== plain ctest =="
(cd build && ctest --output-on-failure -j 2)

echo "== stage-cache hit rates + pipeline stage profile =="
# incremental_eval exits nonzero when the cached (staged) run diverges
# bytewise from the cache-disabled one, so this doubles as the
# pipeline-vs-legacy divergence gate; --profile adds the per-stage table
# to the CI summary.
./build/bench/incremental_eval --muls 3,6 --population 24 --generations 20 \
  --profile --dvs

echo "== staged-vs-default report identity (audited) =="
# The explicit default backends must reproduce the implicit defaults
# byte-for-byte, and the audited stage replay must pass on the result.
SF=./build/examples/synthesize_file
IN=examples/data/sensor_node.mmsyn
ARGS="--population 24 --generations 20 --report-timing=false --audit"
$SF --input "$IN" $ARGS > /tmp/mmsyn-ci-default.out
$SF --input "$IN" $ARGS --scheduler=bottom-level --dvs=none \
  > /tmp/mmsyn-ci-staged.out
if ! diff -q /tmp/mmsyn-ci-default.out /tmp/mmsyn-ci-staged.out; then
  echo "ci: FAIL (explicit pipeline backends diverge from the defaults)"
  exit 1
fi

if [ "$FAST" = "--fast" ]; then
  echo "ci: PASS (fast mode: sanitizer stages skipped)"
  exit 0
fi

echo "== address-sanitizer build =="
cmake -B build-asan -S . -DMMSYN_SANITIZE=address > /dev/null
cmake --build build-asan -j "$JOBS"
echo "== address-sanitizer ctest =="
(cd build-asan && ctest --output-on-failure -j 2)

echo "== undefined-behaviour-sanitizer build =="
cmake -B build-ubsan -S . -DMMSYN_SANITIZE=undefined > /dev/null
cmake --build build-ubsan -j "$JOBS"
echo "== undefined-behaviour-sanitizer ctest =="
(cd build-ubsan && ctest --output-on-failure -j 2)

echo "ci: PASS"
