#!/usr/bin/env bash
# Full CI pass: plain build + tests, a staged-pipeline divergence gate,
# island determinism + equal-budget quality gates, crash/island torture,
# an AddressSanitizer(+UBSan) build + tests, a standalone UBSan build +
# tests, and a ThreadSanitizer pass over a multi-island run. Run from the
# repository root:
#
#   tools/ci.sh            # everything
#   tools/ci.sh --fast     # plain build + tests + divergence gate only
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc)
FAST=${1:-}

echo "== plain build =="
cmake -B build -S . > /dev/null
cmake --build build -j "$JOBS"
echo "== plain ctest =="
(cd build && ctest --output-on-failure -j 2)

echo "== stage-cache hit rates + pipeline stage profile =="
# incremental_eval exits nonzero when the cached (staged) run diverges
# bytewise from the cache-disabled one, so this doubles as the
# pipeline-vs-legacy divergence gate; --profile adds the per-stage table
# to the CI summary.
./build/bench/incremental_eval --muls 3,6 --population 24 --generations 20 \
  --profile --dvs

echo "== staged-vs-default report identity (audited) =="
# The explicit default backends must reproduce the implicit defaults
# byte-for-byte, and the audited stage replay must pass on the result.
SF=./build/examples/synthesize_file
IN=examples/data/sensor_node.mmsyn
ARGS="--population 24 --generations 20 --report-timing=false --audit"
$SF --input "$IN" $ARGS > /tmp/mmsyn-ci-default.out
$SF --input "$IN" $ARGS --scheduler=bottom-level --dvs=none \
  > /tmp/mmsyn-ci-staged.out
if ! diff -q /tmp/mmsyn-ci-default.out /tmp/mmsyn-ci-staged.out; then
  echo "ci: FAIL (explicit pipeline backends diverge from the defaults)"
  exit 1
fi

echo "== power-backend report identity + flag validation =="
# The pinned `paper` power backend must reproduce the flag-omitted default
# byte-for-byte (the registry's bit-identity contract), and an unknown
# --power= value must fail fast with an actionable message instead of
# silently falling back to the default.
$SF --input "$IN" $ARGS --power=paper > /tmp/mmsyn-ci-power-paper.out
if ! diff -q /tmp/mmsyn-ci-default.out /tmp/mmsyn-ci-power-paper.out; then
  echo "ci: FAIL (--power=paper diverges from the flag-omitted default)"
  exit 1
fi
if $SF --input "$IN" $ARGS --power=bogus > /dev/null 2> /tmp/mmsyn-ci-power-err.txt; then
  echo "ci: FAIL (unknown --power=bogus was accepted)"
  exit 1
fi
if ! grep -q "bogus" /tmp/mmsyn-ci-power-err.txt; then
  echo "ci: FAIL (unknown-power error does not name the offending value)"
  exit 1
fi

echo "== power-backend ablation gate =="
# power_backends exits nonzero when a structural ordering (thermal >=
# paper >= dpm-idle in Psi-weighted static power) breaks or a backend's
# own synthesis fails its invariant audit; the committed JSON pins the
# orderings as a tracked baseline too.
./build/bench/power_backends --population 24 --generations 30 \
  --json /tmp/mmsyn-ci-power.json
python3 - /tmp/mmsyn-ci-power.json BENCH_power_backends.json << 'EOF'
import json, sys
fresh = json.load(open(sys.argv[1]))
committed = json.load(open(sys.argv[2]))
for tag, data in (("fresh", fresh), ("committed", committed)):
    if not data["ordering_ok"]:
        sys.exit(f"ci: FAIL ({tag} power-backend ordering violated)")
    for name, row in data["backends"].items():
        if not row["audited_ok"]:
            sys.exit(f"ci: FAIL ({tag} backend '{name}' failed its audit)")
print("power gate: orderings + audits ok (fresh and committed)")
EOF

echo "== micro-kernel parity + perf gate =="
# micro_kernels exits nonzero if any scheduling/DVS stage diverges from
# the frozen reference kernels or the combined speedup drops under 2x.
# The committed BENCH_micro_kernels.json is the tracked baseline: the
# speedup is a same-process ratio (machine-independent), so a fresh run
# falling more than 10% below it flags a data-layout/solver regression.
./build/bench/micro_kernels --repeats 10 --min-speedup 2.0 \
  --json /tmp/mmsyn-ci-mk.json
python3 - /tmp/mmsyn-ci-mk.json BENCH_micro_kernels.json << 'EOF'
import json, sys
fresh = json.load(open(sys.argv[1]))["combined"]["speedup"]
committed = json.load(open(sys.argv[2]))["combined"]["speedup"]
if fresh < 0.9 * committed:
    sys.exit(f"ci: FAIL (combined sched+DVS speedup {fresh:.2f}x regressed "
             f">10% below committed baseline {committed:.2f}x)")
print(f"perf gate: fresh {fresh:.2f}x vs committed {committed:.2f}x — ok")
EOF

echo "== failpoint coverage =="
# Every production failpoint must stay registered (a site silently dropped
# from a refactored path would leave its recovery code untested). The list
# mode prints one registered site per line.
$SF --failpoints list | tee /tmp/mmsyn-ci-failpoints.txt
for site in alloc.arena cache.insert checkpoint.rename checkpoint.write \
            io.read pool.task; do
  if ! grep -qx "$site" /tmp/mmsyn-ci-failpoints.txt; then
    echo "ci: FAIL (failpoint site '$site' is no longer registered)"
    exit 1
  fi
done
# The server binary registers the job-server sites on top of the core
# ones; they gate the WAL/admission/run recovery paths the soak drives.
./build/examples/mmsyn_serve --failpoints list \
  | tee /tmp/mmsyn-ci-failpoints-serve.txt > /dev/null
for site in server.accept server.journal.write job.spawn job.result.write; do
  if ! grep -qx "$site" /tmp/mmsyn-ci-failpoints-serve.txt; then
    echo "ci: FAIL (server failpoint site '$site' is no longer registered)"
    exit 1
  fi
done

echo "== island determinism (threads 1 vs 3) =="
# The island-model contract: a sharded run is a pure function of
# (seed, islands, migration schedule), never thread timing.
ISLAND_ARGS="--islands 3 --migration-interval 5 --migrants 2"
$SF --input "$IN" $ARGS $ISLAND_ARGS --threads 1 > /tmp/mmsyn-ci-isl1.out
$SF --input "$IN" $ARGS $ISLAND_ARGS --threads 3 > /tmp/mmsyn-ci-isl3.out
if ! diff -q /tmp/mmsyn-ci-isl1.out /tmp/mmsyn-ci-isl3.out; then
  echo "ci: FAIL (island results differ across thread counts)"
  exit 1
fi

echo "== island scaling + equal-budget quality gate =="
# island_scaling exits nonzero when island results differ across thread
# counts or no island configuration matches the single population at an
# equal evaluation budget. The committed BENCH_island_scaling.json is the
# tracked baseline; the gated metric (single-population fitness over the
# best island fitness) is deterministic, so a >10% drop means the island
# trajectory itself regressed, not the machine.
./build/bench/island_scaling --population 48 --generations 60 \
  --json /tmp/mmsyn-ci-island.json
python3 - /tmp/mmsyn-ci-island.json BENCH_island_scaling.json << 'EOF'
import json, sys
fresh = json.load(open(sys.argv[1]))["equal_budget_quality_ratio"]
committed = json.load(open(sys.argv[2]))["equal_budget_quality_ratio"]
if fresh < 0.9 * committed:
    sys.exit(f"ci: FAIL (equal-budget island quality {fresh:.3f} regressed "
             f">10% below committed baseline {committed:.3f})")
print(f"island gate: fresh {fresh:.3f} vs committed {committed:.3f} — ok")
EOF

echo "== server throughput + cache gate =="
# Two client waves through the wire protocol; the binary itself asserts
# the second wave is served entirely from the result cache. The gated
# metric (cache_hit_rate) is deterministic by construction — any drop
# below the committed baseline means the cache key or journal replay
# regressed, so the gate is exact, not a 10% band. jobs_per_sec is
# tracked in the JSON but never gated (machine-dependent).
./build/bench/server_throughput --muls 3,4,5 --seeds 3 --workers 4 \
  --clients 4 --json /tmp/mmsyn-ci-server.json
python3 - /tmp/mmsyn-ci-server.json BENCH_server_throughput.json << 'EOF'
import json, sys
fresh = json.load(open(sys.argv[1]))["cache_hit_rate"]
committed = json.load(open(sys.argv[2]))["cache_hit_rate"]
if fresh < committed:
    sys.exit(f"ci: FAIL (server cache hit rate {fresh:.3f} below committed "
             f"baseline {committed:.3f})")
print(f"server cache gate: fresh {fresh:.3f} vs committed {committed:.3f} — ok")
EOF

echo "== server soak (kill -9 / drain / typed rejections) =="
# 24 concurrent jobs byte-identical to the CLI, zero lost jobs across a
# kill -9 restart, graceful SIGTERM drain + resume, typed queue-full /
# quarantine / budget exits; also registered as the server_soak ctest.
bench/server_soak.sh build/examples/mmsyn_serve build/examples/mmsyn_client \
  build/examples/synthesize_file

echo "== crash torture =="
# Deterministic fault schedule (transient reads, on-disk checkpoint
# corruption, kill mid-save) must recover to a byte-identical audited
# report; also registered as the crash_torture ctest.
bench/crash_torture.sh "$SF"

echo "== island crash torture =="
# Kill-and-resume across a migration barrier (corrupted barrier save +
# kill mid-rotation) must replay migrated individuals bit-identically;
# also registered as the island_torture ctest.
bench/island_torture.sh "$SF"

if [ "$FAST" = "--fast" ]; then
  echo "ci: PASS (fast mode: sanitizer stages skipped)"
  exit 0
fi

echo "== address-sanitizer build =="
cmake -B build-asan -S . -DMMSYN_SANITIZE=address > /dev/null
cmake --build build-asan -j "$JOBS"
echo "== address-sanitizer ctest =="
# The suite includes arena_test and micro_kernels_identity, so the bump
# allocator and every SoA scheduling/DVS path run under the sanitizers.
(cd build-asan && ctest --output-on-failure -j 2)

echo "== address-sanitizer crash torture (failpoints armed) =="
# Recovery paths (bounded retries, generation fallback, cache quarantine)
# must be leak- and overflow-clean while faults actually fire. The torture
# harness arms via --failpoints; the extra run arms via MMSYN_FAILPOINTS to
# cover the env path and the sites the torture schedule does not reach.
bench/crash_torture.sh ./build-asan/examples/synthesize_file
MMSYN_FAILPOINTS='alloc.arena=fail@1;pool.task=fail@3;cache.insert=corrupt@2' \
  ./build-asan/examples/synthesize_file --input "$IN" $ARGS > /dev/null

echo "== address-sanitizer power backends (thermal / dpm-idle) =="
# The non-reference power paths (fixed-point thermal iteration, per-PE
# busy accounting, DPM sleep arithmetic, DVS idle-penalty coupling) must
# be clean under ASan+UBSan end to end, audit included. The plain ctest
# suites already run test_power under the sanitizers; these legs drive
# the full synthesize->audit pipeline per backend.
./build-asan/examples/synthesize_file --input "$IN" $ARGS \
  --power=thermal > /dev/null
./build-asan/examples/synthesize_file --input "$IN" $ARGS \
  --power=dpm-idle --dvs > /dev/null

echo "== undefined-behaviour-sanitizer build =="
cmake -B build-ubsan -S . -DMMSYN_SANITIZE=undefined > /dev/null
cmake --build build-ubsan -j "$JOBS"
echo "== undefined-behaviour-sanitizer ctest =="
(cd build-ubsan && ctest --output-on-failure -j 2)

echo "== undefined-behaviour-sanitizer power backends =="
./build-ubsan/examples/synthesize_file --input "$IN" $ARGS \
  --power=thermal > /dev/null
./build-ubsan/examples/synthesize_file --input "$IN" $ARGS \
  --power=dpm-idle --dvs > /dev/null

echo "== thread-sanitizer island run =="
# The island coordinator is the one place worker threads exchange state
# (gather-then-install migration at the generation barriers, shared
# counters, cooperative stop), so a multi-island run at islands == threads
# is the racy configuration by construction. TSan over the full ctest
# suite would triple CI time for paths ASan already covers; this leg pins
# the concurrency story instead.
cmake -B build-tsan -S . -DMMSYN_SANITIZE=thread > /dev/null
cmake --build build-tsan -j "$JOBS"
./build-tsan/examples/synthesize_file --input "$IN" $ARGS \
  --islands 3 --migration-interval 5 --migrants 2 --threads 3 > /dev/null

echo "== thread-sanitizer server run =="
# The job server is the other thread-heavy subsystem: workers, watchdog,
# acceptor and per-connection threads all share the job table under one
# mutex. The in-process throughput bench drives every one of those
# threads (wire clients included) in a single TSan process.
./build-tsan/bench/server_throughput --muls 3,4 --seeds 2 --generations 15 \
  --workers 4 --clients 4 > /dev/null

echo "ci: PASS"
