#!/usr/bin/env bash
# Full CI pass: plain build + tests, an AddressSanitizer(+UBSan) build +
# tests, and the kill-and-resume smoke. Run from the repository root:
#
#   tools/ci.sh            # everything
#   tools/ci.sh --fast     # plain build + tests only
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc)
FAST=${1:-}

echo "== plain build =="
cmake -B build -S . > /dev/null
cmake --build build -j "$JOBS"
echo "== plain ctest =="
(cd build && ctest --output-on-failure -j 2)

echo "== mode-cache hit-rate summary =="
./build/bench/incremental_eval --muls 3,6 --population 24 --generations 20 --dvs

if [ "$FAST" = "--fast" ]; then
  echo "ci: PASS (fast mode: sanitizer stage skipped)"
  exit 0
fi

echo "== address-sanitizer build =="
cmake -B build-asan -S . -DMMSYN_SANITIZE=address > /dev/null
cmake --build build-asan -j "$JOBS"
echo "== address-sanitizer ctest =="
(cd build-asan && ctest --output-on-failure -j 2)

echo "ci: PASS"
