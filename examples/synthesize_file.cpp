// File-driven synthesis tool: load a .mmsyn system description, run the
// co-synthesis, and print the full implementation report. Can also export
// the built-in benchmarks to .mmsyn files to serve as templates.
//
//   synthesize_file --input phone.mmsyn --dvs --report-voltages
//   synthesize_file --input phone.mmsyn --save-mapping phone.mmsyn-map
//   synthesize_file --input phone.mmsyn --evaluate-mapping phone.mmsyn-map
//   synthesize_file --export-smartphone phone.mmsyn
//   synthesize_file --export-mul 6 --output mul6.mmsyn
//
// Crash safety: --checkpoint writes a resumable snapshot of the GA every
// --checkpoint-every generations (and on Ctrl-C / --time-budget expiry);
// --resume continues a checkpointed run bit-identically to an
// uninterrupted one with the same flags. An early stop still reports the
// best implementation found so far (exit code 3).
#include <cstdio>

#include "audit/auditor.hpp"
#include "common/failpoint.hpp"
#include "common/flags.hpp"
#include "common/interrupt.hpp"
#include "core/allocation_builder.hpp"
#include "core/cosynth.hpp"
#include "core/island_ga.hpp"
#include "core/report.hpp"
#include "core/run_control.hpp"
#include "model/io.hpp"
#include "model/mapping_io.hpp"
#include "pipeline/backends.hpp"
#include "pipeline/profile.hpp"
#include "power/backends.hpp"
#include "tgff/smart_phone.hpp"
#include "tgff/suites.hpp"

using namespace mmsyn;

namespace {

std::vector<std::string> backend_names(
    const std::vector<SchedulerBackendInfo>& backends) {
  std::vector<std::string> names;
  for (const auto& b : backends) names.emplace_back(b.name);
  return names;
}

std::vector<std::string> backend_names(
    const std::vector<DvsBackendInfo>& backends) {
  std::vector<std::string> names;
  for (const auto& b : backends) names.emplace_back(b.name);
  return names;
}

std::vector<std::string> backend_names(
    const std::vector<PowerBackendInfo>& backends) {
  std::vector<std::string> names;
  for (const auto& b : backends) names.emplace_back(b.name);
  return names;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define_string("input", "", ".mmsyn file to synthesise");
  flags.define_string("output", "", "write the system/export here");
  flags.define_bool("export-smartphone", false,
                    "write the smart-phone benchmark to --output and exit");
  flags.define_int("export-mul", 0,
                   "write suite instance mulN to --output and exit");
  flags.define_choice("dvs", backend_names(dvs_backends()),
                      /*default_value=*/dvs_backend_name(false),
                      /*implicit_value=*/dvs_backend_name(true),
                      "voltage-scaling backend (bare --dvs = " +
                          std::string(dvs_backend_name(true)) + ")");
  flags.define_choice("scheduler", backend_names(scheduler_backends()),
                      /*default_value=*/scheduler_backends().front().name,
                      /*implicit_value=*/scheduler_backends().front().name,
                      "list-scheduler priority backend");
  flags.define_choice("power", backend_names(power_backends()),
                      /*default_value=*/power_backends().front().name,
                      /*implicit_value=*/power_backends().front().name,
                      "power-model backend (paper = the pinned reference "
                      "model; thermal = temperature-dependent leakage; "
                      "dpm-idle = sleep-state idle-interval accounting)");
  flags.define_bool("profile", false,
                    "print per-stage pipeline timings and cache hit rates");
  flags.define_bool("uniform", false,
                    "neglect mode probabilities (baseline behaviour)");
  flags.define_bool("report-voltages", false,
                    "include voltage schedules in the report");
  flags.define_bool("gantt", true, "include Gantt charts in the report");
  flags.define_string("save-mapping", "",
                      "write the synthesised mapping to this file");
  flags.define_string("evaluate-mapping", "",
                      "skip synthesis; evaluate this mapping file instead");
  flags.define_int("seed", 1, "GA seed");
  flags.define_int("population", 64, "GA population size");
  flags.define_int("generations", 600, "GA generation cap");
  flags.define_int("threads", 1,
                   "fitness-evaluation threads (0 = all cores); the result "
                   "is identical for any value");
  flags.define_choice("rng", {"threefry", "legacy"},
                      /*default_value=*/"threefry",
                      /*implicit_value=*/"threefry",
                      "GA random-stream engine: counter-based threefry "
                      "(default) or legacy xoshiro256++ for reproducing "
                      "pre-v6 runs bit-for-bit");
  flags.define_int("islands", 1,
                   "GA islands (independent populations exchanging elites "
                   "along a deterministic ring; requires --rng=threefry "
                   "when > 1)");
  flags.define_int("migration-interval", 20,
                   "generations between island migration barriers");
  flags.define_int("migrants", 2,
                   "elite individuals exchanged per island per barrier");
  flags.define_int("mode-cache-capacity", 1 << 16,
                   "per-mode evaluation cache entry cap, FIFO eviction "
                   "(0 = unbounded)");
  flags.define_double("time-budget", 0.0,
                      "wall-clock budget in seconds (0 = unlimited); on "
                      "expiry the best-so-far result is reported");
  flags.define_string("checkpoint", "",
                      "write resumable GA checkpoints to this file");
  flags.define_int("checkpoint-every", 25,
                   "generations between periodic checkpoints");
  flags.define_string("resume", "",
                      "resume from this checkpoint file (same system, seed "
                      "and GA options required)");
  flags.define_int("checkpoint-keep", 3,
                   "checkpoint generations kept on disk (file, file.1, ...); "
                   "resume falls back through them past corruption");
  flags.define_string("failpoints", "",
                      "fault-injection spec (see common/failpoint.hpp), or "
                      "'list' to print the registered failpoints and exit; "
                      "empty reads $MMSYN_FAILPOINTS");
  flags.define_bool("audit", false,
                    "replay the result through the invariant auditor and "
                    "fail on any violation");
  flags.define_bool("quiet", false,
                    "suppress the system summary; stdout then carries the "
                    "implementation report alone (byte-comparable against "
                    "the job server's stored reports)");
  flags.define_bool("report-timing", true,
                    "include wall-clock timing in the report (disable for "
                    "byte-identical reports across runs)");
  flags.define_bool("exhaustive", false,
                    "enumerate every candidate instead of running the GA "
                    "(tiny systems only)");
  flags.define_int("exhaustive-budget", 2'000'000,
                   "candidate-count cap of --exhaustive");
  if (!flags.parse(argc, argv)) return 1;

  if (flags.get_string("failpoints") == "list") {
    for (const std::string& site : failpoint::registered_sites())
      std::printf("%s\n", site.c_str());
    return 0;
  }
  try {
    if (!flags.get_string("failpoints").empty())
      failpoint::arm(flags.get_string("failpoints"));
    else
      failpoint::arm_from_env();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  if (failpoint::armed())
    std::fprintf(stderr, "failpoints armed: %s\n",
                 failpoint::active_spec().c_str());

  if (flags.get_bool("export-smartphone") || flags.get_int("export-mul") > 0) {
    const std::string path = flags.get_string("output").empty()
                                 ? "exported.mmsyn"
                                 : flags.get_string("output");
    const System system = flags.get_bool("export-smartphone")
                              ? make_smart_phone()
                              : make_mul(static_cast<int>(
                                    flags.get_int("export-mul")));
    save_system(path, system);
    std::printf("wrote %s (%s)\n", path.c_str(), system.name.c_str());
    return 0;
  }

  if (flags.get_string("input").empty()) {
    std::fprintf(stderr, "--input is required (or use an --export option)\n");
    flags.print_usage(argv[0]);
    return 1;
  }

  System system;
  try {
    system = load_system(flags.get_string("input"));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "failed to load: %s\n", e.what());
    return 1;
  }
  const auto problems = system.validate();
  if (!problems.empty()) {
    for (const auto& p : problems)
      std::fprintf(stderr, "invalid system: %s\n", p.c_str());
    return 1;
  }
  if (!flags.get_bool("quiet")) std::printf("%s\n", describe(system).c_str());

  SynthesisOptions options;
  PipelineProfiler profiler;
  try {
    // The flag layer already restricts the values to the registered
    // choices; resolving through the registry keeps the name -> backend
    // mapping in one place (pipeline/backends.cpp).
    options.use_dvs = resolve_dvs_backend(flags.get_string("dvs"));
    options.scheduling_policy =
        resolve_scheduler_backend(flags.get_string("scheduler"));
    options.power = resolve_power_backend(flags.get_string("power"));
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  if (flags.get_bool("profile")) options.profiler = &profiler;
  options.consider_probabilities = !flags.get_bool("uniform");
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  options.ga.population_size = static_cast<int>(flags.get_int("population"));
  options.ga.max_generations = static_cast<int>(flags.get_int("generations"));
  options.ga.num_threads = static_cast<int>(flags.get_int("threads"));
  options.ga.rng = flags.get_string("rng") == "legacy" ? RngKind::kXoshiro
                                                       : RngKind::kThreefry;
  options.ga.mode_cache_capacity =
      static_cast<std::size_t>(flags.get_int("mode-cache-capacity"));
  options.islands = static_cast<int>(flags.get_int("islands"));
  options.migration_interval =
      static_cast<int>(flags.get_int("migration-interval"));
  options.migrants = static_cast<int>(flags.get_int("migrants"));
  {
    // Fail fast on an inconsistent island topology (wrong engine, migrant
    // count, ...) with the flag-level message instead of a deep throw.
    IslandOptions topology;
    topology.islands = options.islands;
    topology.migration_interval = options.migration_interval;
    topology.migrants = options.migrants;
    try {
      IslandGa::validate(options.ga, topology);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  }

  SynthesisResult result;
  if (!flags.get_string("evaluate-mapping").empty()) {
    // Evaluate-only mode: price a stored implementation candidate.
    try {
      result.mapping =
          load_mapping(flags.get_string("evaluate-mapping"), system);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "failed to load mapping: %s\n", e.what());
      return 1;
    }
    result.cores = build_core_allocation(system, result.mapping);
    EvaluationOptions eval_options;
    eval_options.use_dvs = options.use_dvs;
    eval_options.keep_schedules = true;
    eval_options.scheduling_policy = options.scheduling_policy;
    eval_options.profiler = options.profiler;
    eval_options.power = options.power;
    const Evaluator evaluator(system, eval_options);
    result.evaluation = evaluator.evaluate(result.mapping, result.cores);
  } else if (flags.get_bool("exhaustive")) {
    try {
      result = exhaustive_search(
          system, options,
          static_cast<std::uint64_t>(flags.get_int("exhaustive-budget")));
    } catch (const ExhaustiveOverflow& e) {
      std::fprintf(stderr,
                   "exhaustive enumeration is infeasible: the mapping space "
                   "has at least %llu candidates but the budget is %llu.\n"
                   "Raise --exhaustive-budget, or drop --exhaustive to use "
                   "the genetic algorithm instead.\n",
                   static_cast<unsigned long long>(e.space_at_least()),
                   static_cast<unsigned long long>(e.budget()));
      return 1;
    }
  } else {
    RunControl control;
    control.time_budget_seconds = flags.get_double("time-budget");
    control.checkpoint_path = flags.get_string("checkpoint");
    control.checkpoint_every_generations =
        static_cast<int>(flags.get_int("checkpoint-every"));
    control.checkpoint_keep_generations =
        static_cast<int>(flags.get_int("checkpoint-keep"));
    control.resume_path = flags.get_string("resume");
    control.recovery_log = [](const std::string& message) {
      std::fprintf(stderr, "recovery: %s\n", message.c_str());
    };
    install_interrupt_flag();
    control.listen_for_interrupt();
    try {
      result = synthesize(system, options, &control);
    } catch (const CheckpointError& e) {
      std::fprintf(stderr, "cannot resume: %s\n", e.what());
      std::fprintf(stderr,
                   "The checkpoint must come from the same system file, "
                   "--seed and GA options as this invocation.\n");
      return 1;
    }
    if (result.partial)
      std::fprintf(stderr,
                   "run stopped early (%s); reporting the best "
                   "implementation found so far\n",
                   result.stop_reason == StopReason::kBudgetExhausted
                       ? "time budget"
                       : "cancelled");
  }

  if (!flags.get_string("save-mapping").empty()) {
    save_mapping(flags.get_string("save-mapping"), system, result.mapping);
    std::printf("mapping written to %s\n",
                flags.get_string("save-mapping").c_str());
  }

  ReportOptions report;
  report.include_gantt = flags.get_bool("gantt");
  report.include_voltage_schedules = flags.get_bool("report-voltages");
  report.include_timing = flags.get_bool("report-timing");
  std::printf("%s", implementation_report(system, result, report).c_str());

  if (flags.get_bool("profile")) {
    // Cache counters exist only for the GA path; the evaluate-mapping and
    // exhaustive paths never consult the mode cache (-1 omits the rows).
    const bool cached = flags.get_string("evaluate-mapping").empty() &&
                        !flags.get_bool("exhaustive");
    std::printf("%s", profiler
                          .table(cached ? result.mode_cache_hits : -1,
                                 cached ? result.mode_cache_lookups : -1,
                                 cached ? result.schedule_cache_hits : -1,
                                 cached ? result.schedule_cache_lookups : -1)
                          .c_str());
  }

  if (flags.get_bool("audit")) {
    AuditOptions audit_options = audit_options_for(options);
    const AuditReport audit = audit_result(system, result, audit_options);
    std::printf("%s", audit.to_string().c_str());
    if (!audit.passed()) return 4;
  }
  if (result.partial) return 3;
  return result.evaluation.feasible() ? 0 : 2;
}
