// Command-line client of mmsyn_serve.
//
//   mmsyn_client --socket s.sock --input phone.mmsyn --seed 7
//   mmsyn_client --socket s.sock --input phone.mmsyn --async   # print id
//   mmsyn_client --socket s.sock --job 12                      # wait by id
//   mmsyn_client --socket s.sock --stats
//
// On a completed job the implementation report is printed to stdout —
// byte-identical to `synthesize_file --quiet --report-timing=false` with
// the same system and options. Exit codes:
//   0  job completed, implementation feasible
//   2  job completed, infeasible
//   3  budget exhausted / cancelled (partial result still printed)
//   5  job quarantined (error printed to stderr)
//   6  rejected: queue full
//   7  rejected: server draining
//   1  anything else (parse error, connection failure, bad flags)
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/flags.hpp"
#include "pipeline/backends.hpp"
#include "power/backends.hpp"
#include "server/client.hpp"

using namespace mmsyn;

namespace {

int reject_exit(const RejectReply& reject) {
  std::fprintf(stderr, "rejected: %s\n", reject.message.c_str());
  switch (reject.code) {
    case RejectCode::kQueueFull:
      return 6;
    case RejectCode::kDraining:
      return 7;
    default:
      return 1;
  }
}

int result_exit(const JobResultReply& result) {
  switch (result.outcome) {
    case JobOutcome::kOk:
      std::printf("%s", result.report.c_str());
      return result.feasible ? 0 : 2;
    case JobOutcome::kBudgetExhausted:
    case JobOutcome::kCancelled:
      std::printf("%s", result.report.c_str());
      std::fprintf(stderr, "job %llu stopped early (%s)\n",
                   static_cast<unsigned long long>(result.job_id),
                   result.outcome == JobOutcome::kBudgetExhausted
                       ? "time budget"
                       : "cancelled");
      return 3;
    case JobOutcome::kQuarantined:
      std::fprintf(stderr, "job %llu quarantined: %s\n",
                   static_cast<unsigned long long>(result.job_id),
                   result.report.c_str());
      return 5;
  }
  return 1;
}

std::vector<std::string> backend_names(
    const std::vector<SchedulerBackendInfo>& backends) {
  std::vector<std::string> names;
  for (const auto& b : backends) names.emplace_back(b.name);
  return names;
}

std::vector<std::string> backend_names(
    const std::vector<DvsBackendInfo>& backends) {
  std::vector<std::string> names;
  for (const auto& b : backends) names.emplace_back(b.name);
  return names;
}

std::vector<std::string> backend_names(
    const std::vector<PowerBackendInfo>& backends) {
  std::vector<std::string> names;
  for (const auto& b : backends) names.emplace_back(b.name);
  return names;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define_string("socket", "", "unix-domain socket of mmsyn_serve");
  flags.define_string("input", "", ".mmsyn system file to submit");
  flags.define_bool("async", false,
                    "submit only: print the job id and exit without "
                    "waiting (fetch later with --job)");
  flags.define_int("job", 0, "wait for this existing job id instead of "
                             "submitting");
  flags.define_bool("stats", false, "print server counters and exit");
  flags.define_int("seed", 1, "GA seed");
  flags.define_int("population", 64, "GA population size");
  flags.define_int("generations", 600, "GA generation cap");
  flags.define_int("threads", 1,
                   "fitness-evaluation threads inside the job (result is "
                   "identical for any value)");
  flags.define_choice("dvs", backend_names(dvs_backends()),
                      /*default_value=*/dvs_backend_name(false),
                      /*implicit_value=*/dvs_backend_name(true),
                      "voltage-scaling backend (bare --dvs = " +
                          std::string(dvs_backend_name(true)) + ")");
  flags.define_choice("scheduler", backend_names(scheduler_backends()),
                      /*default_value=*/scheduler_backends().front().name,
                      /*implicit_value=*/scheduler_backends().front().name,
                      "list-scheduler priority backend");
  flags.define_choice("power", backend_names(power_backends()),
                      /*default_value=*/power_backends().front().name,
                      /*implicit_value=*/power_backends().front().name,
                      "power-model backend of the submitted job");
  flags.define_bool("uniform", false,
                    "neglect mode probabilities (baseline behaviour)");
  flags.define_double("time-budget", 0.0,
                      "per-job wall-clock budget in seconds (0 = server "
                      "default)");
  flags.define_bool("gantt", true, "include Gantt charts in the report");
  flags.define_bool("report-voltages", false,
                    "include voltage schedules in the report");
  if (!flags.parse(argc, argv)) return 1;

  if (flags.get_string("socket").empty()) {
    std::fprintf(stderr, "--socket is required\n");
    flags.print_usage(argv[0]);
    return 1;
  }
  ServeClient client(flags.get_string("socket"));

  try {
    if (flags.get_bool("stats")) {
      const StatsReply s = client.stats();
      std::printf("accepted              %llu\n"
                  "completed             %llu\n"
                  "quarantined           %llu\n"
                  "cache hits/lookups    %llu/%llu\n"
                  "queue-full rejections %llu\n"
                  "transient retries     %llu\n"
                  "watchdog cancels      %llu\n"
                  "recovered pending     %llu\n"
                  "queued now            %llu\n"
                  "running now           %llu\n",
                  static_cast<unsigned long long>(s.accepted),
                  static_cast<unsigned long long>(s.completed),
                  static_cast<unsigned long long>(s.quarantined),
                  static_cast<unsigned long long>(s.cache_hits),
                  static_cast<unsigned long long>(s.cache_lookups),
                  static_cast<unsigned long long>(s.queue_full_rejections),
                  static_cast<unsigned long long>(s.retries),
                  static_cast<unsigned long long>(s.watchdog_cancels),
                  static_cast<unsigned long long>(s.recovered_pending),
                  static_cast<unsigned long long>(s.queued),
                  static_cast<unsigned long long>(s.running));
      return 0;
    }

    if (flags.get_int("job") > 0) {
      const WaitOutcome out =
          client.wait(static_cast<std::uint64_t>(flags.get_int("job")));
      if (!out.ok) return reject_exit(out.reject);
      return result_exit(out.result);
    }

    if (flags.get_string("input").empty()) {
      std::fprintf(stderr,
                   "--input is required (or use --job N / --stats)\n");
      flags.print_usage(argv[0]);
      return 1;
    }

    SubmitRequest request;
    {
      std::ifstream in(flags.get_string("input"), std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "cannot read %s\n",
                     flags.get_string("input").c_str());
        return 1;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      request.system_text = ss.str();
    }
    request.options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    request.options.population =
        static_cast<std::int32_t>(flags.get_int("population"));
    request.options.generations =
        static_cast<std::int32_t>(flags.get_int("generations"));
    request.options.threads =
        static_cast<std::int32_t>(flags.get_int("threads"));
    request.options.dvs_backend = flags.get_string("dvs");
    request.options.scheduler_backend = flags.get_string("scheduler");
    request.options.power_backend = flags.get_string("power");
    request.options.consider_probabilities = !flags.get_bool("uniform");
    request.options.time_budget = flags.get_double("time-budget");
    request.options.report_gantt = flags.get_bool("gantt");
    request.options.report_voltages = flags.get_bool("report-voltages");

    const SubmitOutcome submitted = client.submit(request);
    if (!submitted.accepted) return reject_exit(submitted.reject);
    if (flags.get_bool("async")) {
      std::printf("%llu%s\n",
                  static_cast<unsigned long long>(submitted.ok.job_id),
                  submitted.ok.cached ? " (cached)" : "");
      return 0;
    }

    const WaitOutcome out = client.wait(submitted.ok.job_id);
    if (!out.ok) return reject_exit(out.reject);
    return result_exit(out.result);
  } catch (const WireError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
