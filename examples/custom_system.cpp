// Custom-system example: builds a multi-mode system with the TGFF-style
// generator, inspects it, and runs both synthesis flavours — the template
// to copy when evaluating the methodology on your own workloads.
#include <cstdio>

#include "core/cosynth.hpp"
#include "tgff/generator.hpp"

using namespace mmsyn;

int main(int argc, char** argv) {
  // Everything about the generated instance is driven by this config; see
  // tgff/generator.hpp for the full parameter list.
  GeneratorConfig config;
  config.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 0xC0FFEEull;
  config.mode_count_min = 4;
  config.mode_count_max = 4;
  config.tasks_per_mode_min = 10;
  config.tasks_per_mode_max = 20;
  config.pe_count_min = 3;
  config.pe_count_max = 3;

  const System system = generate_system(config, "custom");
  const auto problems = system.validate();
  if (!problems.empty()) {
    for (const auto& p : problems)
      std::fprintf(stderr, "invalid: %s\n", p.c_str());
    return 1;
  }
  std::printf("%s\n", describe(system).c_str());

  SynthesisOptions options;
  options.use_dvs = true;
  options.seed = 1;

  options.consider_probabilities = false;
  const SynthesisResult baseline = synthesize(system, options);
  options.consider_probabilities = true;
  const SynthesisResult proposed = synthesize(system, options);

  std::printf("probability-neglecting: %8.3f mW (feasible=%d)\n",
              baseline.evaluation.avg_power_true * 1e3,
              baseline.evaluation.feasible());
  std::printf("probability-aware:      %8.3f mW (feasible=%d)\n",
              proposed.evaluation.avg_power_true * 1e3,
              proposed.evaluation.feasible());
  if (baseline.evaluation.avg_power_true > 0.0)
    std::printf("reduction:              %8.2f %%\n",
                100.0 *
                    (baseline.evaluation.avg_power_true -
                     proposed.evaluation.avg_power_true) /
                    baseline.evaluation.avg_power_true);

  // Where did the energy go? Print the proposed implementation's mapping.
  for (std::size_t m = 0; m < system.omsm.mode_count(); ++m) {
    const Mode& mode = system.omsm.mode(ModeId{static_cast<int>(m)});
    std::printf("\n%s (Psi=%.2f):", mode.name.c_str(), mode.probability);
    for (std::size_t t = 0; t < mode.graph.task_count(); ++t) {
      if (t % 6 == 0) std::printf("\n  ");
      const PeId pe = proposed.mapping.modes[m].task_to_pe[t];
      std::printf("%s->%s  ",
                  mode.graph.task(TaskId{static_cast<int>(t)}).name.c_str(),
                  system.arch.pe(pe).name.c_str());
    }
  }
  std::printf("\n");
  return 0;
}
