// Demonstrates the paper's Fig. 5 transformation: parallel tasks on the
// cores of one DVS-enabled hardware component are serialised into virtual
// segments (all cores share a single supply voltage), and PV-DVS then
// scales the segments like software tasks.
//
// The built system mirrors Fig. 5: five hardware tasks on two cores of one
// DVS ASIC. The example prints the schedule, the derived segments, and the
// per-segment voltages/energies chosen by PV-DVS.
#include <cstdio>

#include "dvs/dvs_graph.hpp"
#include "dvs/pv_dvs.hpp"
#include "model/system.hpp"
#include "sched/list_scheduler.hpp"

using namespace mmsyn;

int main() {
  System system;
  system.name = "fig5-transform";

  Pe asic;
  asic.name = "HW";
  asic.kind = PeKind::kAsic;
  asic.dvs_enabled = true;
  asic.voltage_levels = {1.2, 1.9, 2.6, 3.3};
  asic.threshold_voltage = 0.8;
  asic.area_capacity = 1000.0;
  const PeId hw = system.arch.add_pe(asic);

  // Two core types; type X gets two core instances (parallel tasks).
  const TaskTypeId x = system.tech.add_type("X");
  system.tech.set_implementation(x, hw, {2e-3, 0.02, 200.0});
  const TaskTypeId y = system.tech.add_type("Y");
  system.tech.set_implementation(y, hw, {3e-3, 0.03, 250.0});

  // Five tasks shaped after Fig. 5: τ0..τ4; τ1/τ2 run on core 0, τ3/τ4 on
  // core 1, τ0 feeds both chains.
  Mode mode;
  mode.name = "fig5";
  mode.probability = 1.0;
  mode.period = 20e-3;  // plenty of slack for voltage scaling
  const TaskId t0 = mode.graph.add_task("tau0", y);
  const TaskId t1 = mode.graph.add_task("tau1", x);
  const TaskId t2 = mode.graph.add_task("tau2", x);
  const TaskId t3 = mode.graph.add_task("tau3", x);
  const TaskId t4 = mode.graph.add_task("tau4", x);
  mode.graph.add_edge(t0, t1, 0.0);
  mode.graph.add_edge(t0, t3, 0.0);
  mode.graph.add_edge(t1, t2, 0.0);
  mode.graph.add_edge(t3, t4, 0.0);
  system.omsm.add_mode(mode);
  const Mode& m = system.omsm.mode(ModeId{0});

  ModeMapping mapping;
  mapping.task_to_pe.assign(5, hw);

  // Allocate two X cores so the chains overlap in time.
  std::vector<CoreSet> cores(1);
  cores[0].set_count(x, 2);
  cores[0].set_count(y, 1);

  const ModeSchedule schedule =
      list_schedule({m, mapping, system.arch, system.tech, cores});
  std::printf("schedule (makespan %.2f ms):\n", schedule.makespan * 1e3);
  for (const ScheduledTask& st : schedule.tasks)
    std::printf("  %s: core %d, %6.2f - %6.2f ms\n",
                m.graph.task(st.task).name.c_str(), st.core_instance,
                st.start * 1e3, st.finish * 1e3);

  const DvsGraph graph =
      build_dvs_graph(m, schedule, mapping, system.arch, system.tech);
  std::printf("\nFig. 5 transformation -> %zu virtual segments:\n",
              graph.node_count());
  const PvDvsResult dvs = run_pv_dvs(graph, system.arch);
  for (std::size_t i = 0; i < graph.node_count(); ++i) {
    const DvsNode node = graph.node(i);
    std::printf("  segment %d: t_min %5.2f ms -> t %5.2f ms, Vdd %.2f V, "
                "E %7.2f uJ (nominal %7.2f uJ)\n",
                node.ref, node.tmin * 1e3, dvs.scaled_time[i] * 1e3,
                dvs.voltage[i], dvs.energy[i] * 1e6, node.e_nom * 1e6);
  }
  std::printf("\ntotal energy: %.2f uJ nominal -> %.2f uJ scaled "
              "(%.1f %% saved), deadlines met: %s\n",
              dvs.nominal_energy * 1e6, dvs.total_energy * 1e6,
              100.0 * (dvs.nominal_energy - dvs.total_energy) /
                  dvs.nominal_energy,
              dvs.deadlines_met ? "yes" : "NO");
  return dvs.deadlines_met ? 0 : 1;
}
