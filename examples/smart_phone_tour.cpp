// Smart-phone tour: walks through the paper's real-life benchmark — the
// OMSM structure, the per-mode task graphs, one full synthesis with DVS,
// and the resulting per-mode power/shut-down report.
#include <cstdio>

#include "common/table.hpp"
#include "core/cosynth.hpp"
#include "tgff/smart_phone.hpp"

#include <iostream>

using namespace mmsyn;

int main() {
  const System system = make_smart_phone();
  const auto problems = system.validate();
  if (!problems.empty()) {
    for (const auto& p : problems)
      std::fprintf(stderr, "invalid: %s\n", p.c_str());
    return 1;
  }

  std::printf("%s\n", describe(system).c_str());
  std::printf("OMSM transitions (with limits):\n");
  for (const ModeTransition& t : system.omsm.transitions())
    std::printf("  %-28s -> %-28s t_max=%.0f ms\n",
                system.omsm.mode(t.from).name.c_str(),
                system.omsm.mode(t.to).name.c_str(),
                t.max_transition_time * 1e3);

  SynthesisOptions options;
  options.use_dvs = true;
  options.seed = 2003;
  std::printf("\nsynthesising (probability-aware, with DVS)...\n");
  const SynthesisResult result = synthesize(system, options);

  TextTable table;
  table.set_header({"Mode", "Psi", "period(ms)", "dyn(mW)", "stat(mW)",
                    "makespan(ms)", "PEs on"});
  for (std::size_t m = 0; m < system.omsm.mode_count(); ++m) {
    const Mode& mode = system.omsm.mode(ModeId{static_cast<int>(m)});
    const ModeEvaluation& me = result.evaluation.modes[m];
    std::string pes;
    for (std::size_t p = 0; p < me.pe_active.size(); ++p)
      if (me.pe_active[p])
        pes += (pes.empty() ? "" : "+") +
               system.arch.pe(PeId{static_cast<int>(p)}).name;
    table.add_row({mode.name, TextTable::num(mode.probability, 2),
                   TextTable::num(mode.period * 1e3, 1),
                   TextTable::num(me.dyn_power * 1e3),
                   TextTable::num(me.static_power * 1e3),
                   TextTable::num(me.makespan * 1e3, 1), pes});
  }
  table.print(std::cout, "Per-mode implementation report");

  std::printf("\naverage power: %.3f mW  (feasible=%d, %d generations, %ld "
              "evaluations, %.1f s)\n",
              result.evaluation.avg_power_true * 1e3,
              result.evaluation.feasible(), result.generations,
              result.evaluations, result.elapsed_seconds);
  return 0;
}
