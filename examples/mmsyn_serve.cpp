// Long-running synthesis job server (see src/server/job_server.hpp and
// DESIGN.md §15): accepts concurrent jobs over a unix-domain socket,
// journals every accepted job to a write-ahead log under --state-dir,
// checkpoints running jobs, and survives kill -9 by replaying the
// journal on the next start. SIGTERM/SIGINT triggers a graceful drain:
// admission stops, running jobs checkpoint and are journaled kDrained,
// queued jobs stay journaled, and the process exits 0; a restarted
// server resumes all of them bit-identically.
//
//   mmsyn_serve --socket /tmp/mmsyn.sock --state-dir /var/lib/mmsyn
//   mmsyn_serve --socket s.sock --state-dir st --workers 4 --queue-limit 32
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/failpoint.hpp"
#include "common/flags.hpp"
#include "common/interrupt.hpp"
#include "server/job_server.hpp"

using namespace mmsyn;

int main(int argc, char** argv) {
  Flags flags;
  flags.define_string("socket", "", "unix-domain socket path to listen on");
  flags.define_string("state-dir", "",
                      "directory for the job journal and checkpoints "
                      "(must exist)");
  flags.define_int("workers", 2, "concurrent synthesis worker threads");
  flags.define_int("queue-limit", 64,
                   "admission-queue bound; beyond it submits are rejected "
                   "with the typed queue-full code");
  flags.define_double("default-time-budget", 0.0,
                      "wall-clock budget (seconds) for jobs that set none "
                      "(0 = unlimited)");
  flags.define_double("watchdog-grace", 2.0,
                      "seconds past its budget before the watchdog "
                      "cooperatively cancels a job");
  flags.define_int("max-transient-retries", 3,
                   "transient-fault re-runs per job before quarantine");
  flags.define_int("max-deterministic-failures", 2,
                   "deterministic failures before quarantine");
  flags.define_int("max-crash-attempts", 2,
                   "journaled crashed attempts before quarantine");
  flags.define_int("checkpoint-every", 25,
                   "generations between per-job checkpoints");
  flags.define_int("checkpoint-keep", 2,
                   "checkpoint generations kept per job");
  flags.define_int("seed", 1,
                   "server seed keying the deterministic retry-backoff "
                   "schedule (not the jobs' synthesis seeds)");
  flags.define_bool("cache", true,
                    "serve repeated (system, options) submissions from the "
                    "cross-job result cache");
  flags.define_string("failpoints", "",
                      "fault-injection spec (see common/failpoint.hpp), or "
                      "'list' to print the registered failpoints and exit; "
                      "empty reads $MMSYN_FAILPOINTS");
  flags.define_bool("verbose", true, "log recovery/retry events to stderr");
  if (!flags.parse(argc, argv)) return 1;

  if (flags.get_string("failpoints") == "list") {
    for (const std::string& site : failpoint::registered_sites())
      std::printf("%s\n", site.c_str());
    return 0;
  }
  try {
    if (!flags.get_string("failpoints").empty())
      failpoint::arm(flags.get_string("failpoints"));
    else
      failpoint::arm_from_env();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  if (failpoint::armed())
    std::fprintf(stderr, "failpoints armed: %s\n",
                 failpoint::active_spec().c_str());

  if (flags.get_string("socket").empty() ||
      flags.get_string("state-dir").empty()) {
    std::fprintf(stderr, "--socket and --state-dir are required\n");
    flags.print_usage(argv[0]);
    return 1;
  }

  ServerOptions options;
  options.socket_path = flags.get_string("socket");
  options.state_dir = flags.get_string("state-dir");
  options.workers = static_cast<int>(flags.get_int("workers"));
  options.queue_limit = static_cast<int>(flags.get_int("queue-limit"));
  options.default_time_budget = flags.get_double("default-time-budget");
  options.watchdog_grace = flags.get_double("watchdog-grace");
  options.max_transient_retries =
      static_cast<int>(flags.get_int("max-transient-retries"));
  options.max_deterministic_failures =
      static_cast<int>(flags.get_int("max-deterministic-failures"));
  options.max_crash_attempts =
      static_cast<int>(flags.get_int("max-crash-attempts"));
  options.checkpoint_every =
      static_cast<int>(flags.get_int("checkpoint-every"));
  options.checkpoint_keep = static_cast<int>(flags.get_int("checkpoint-keep"));
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  options.result_cache = flags.get_bool("cache");
  if (flags.get_bool("verbose")) {
    options.log = [](const std::string& message) {
      std::fprintf(stderr, "mmsyn_serve: %s\n", message.c_str());
    };
  }

  JobServer server(std::move(options));
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mmsyn_serve: startup failed: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "mmsyn_serve: listening on %s\n",
               flags.get_string("socket").c_str());

  // SIGTERM/SIGINT set the cooperative flag (common/interrupt.hpp); the
  // main thread polls it and runs the graceful drain. A second signal
  // kills the process the ordinary way — the journal makes even that
  // recoverable.
  install_interrupt_flag();
  while (!interrupt_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "mmsyn_serve: draining\n");
  server.drain_and_stop();
  std::fprintf(stderr, "mmsyn_serve: drained, exiting\n");
  return 0;
}
