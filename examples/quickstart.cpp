// Quickstart: build a small two-mode system by hand, synthesise it twice
// (with and without mode execution probabilities) and compare the
// resulting average power — the paper's headline experiment in ~100 lines.
#include <cstdio>

#include "core/cosynth.hpp"
#include "model/system.hpp"

using namespace mmsyn;

namespace {

System build_system() {
  System system;
  system.name = "quickstart";

  // Architecture: a DVS-capable processor and a small ASIC on one bus.
  Pe cpu;
  cpu.name = "CPU";
  cpu.kind = PeKind::kGpp;
  cpu.dvs_enabled = true;
  cpu.voltage_levels = {1.3, 2.0, 2.6, 3.3};
  cpu.static_power = 0.5e-3;
  const PeId pe_cpu = system.arch.add_pe(cpu);

  Pe asic;
  asic.name = "ACC";
  asic.kind = PeKind::kAsic;
  asic.area_capacity = 400.0;  // FILTER or FFT core fits, not both
  asic.static_power = 0.3e-3;
  const PeId pe_asic = system.arch.add_pe(asic);

  Cl bus;
  bus.name = "BUS";
  bus.bandwidth = 1e7;
  bus.transfer_power = 30e-3;
  bus.static_power = 0.1e-3;
  bus.attached = {pe_cpu, pe_asic};
  system.arch.add_cl(bus);

  // Technology: three task types; FILTER and FFT have hardware cores.
  const TaskTypeId filter = system.tech.add_type("FILTER");
  system.tech.set_implementation(filter, pe_cpu, {8e-3, 0.20, 0.0});
  system.tech.set_implementation(filter, pe_asic, {0.4e-3, 4e-3, 300.0});
  const TaskTypeId fft = system.tech.add_type("FFT");
  system.tech.set_implementation(fft, pe_cpu, {6e-3, 0.25, 0.0});
  system.tech.set_implementation(fft, pe_asic, {0.2e-3, 6e-3, 350.0});
  const TaskTypeId ctrl = system.tech.add_type("CTRL");
  system.tech.set_implementation(ctrl, pe_cpu, {2e-3, 0.10, 0.0});

  // Mode "idle" (90% of the time): a light control loop.
  Mode idle;
  idle.name = "idle";
  idle.probability = 0.9;
  idle.period = 40e-3;
  {
    const TaskId a = idle.graph.add_task("sense", ctrl);
    const TaskId b = idle.graph.add_task("filter", filter);
    const TaskId c = idle.graph.add_task("act", ctrl);
    idle.graph.add_edge(a, b, 2000.0);
    idle.graph.add_edge(b, c, 2000.0);
  }
  const ModeId m_idle = system.omsm.add_mode(idle);

  // Mode "burst" (10%): a heavier DSP pipeline.
  Mode burst;
  burst.name = "burst";
  burst.probability = 0.1;
  burst.period = 25e-3;
  {
    const TaskId a = burst.graph.add_task("acquire", ctrl);
    const TaskId f1 = burst.graph.add_task("fft1", fft);
    const TaskId f2 = burst.graph.add_task("fft2", fft);
    const TaskId g = burst.graph.add_task("filter", filter);
    const TaskId z = burst.graph.add_task("emit", ctrl);
    burst.graph.add_edge(a, f1, 8000.0);
    burst.graph.add_edge(a, f2, 8000.0);
    burst.graph.add_edge(f1, g, 8000.0);
    burst.graph.add_edge(f2, g, 8000.0);
    burst.graph.add_edge(g, z, 4000.0);
  }
  const ModeId m_burst = system.omsm.add_mode(burst);

  system.omsm.add_transition({m_idle, m_burst, 0.02});
  system.omsm.add_transition({m_burst, m_idle, 0.02});
  return system;
}

}  // namespace

int main() {
  const System system = build_system();
  const auto problems = system.validate();
  if (!problems.empty()) {
    for (const auto& p : problems) std::fprintf(stderr, "invalid: %s\n", p.c_str());
    return 1;
  }
  std::printf("%s", describe(system).c_str());

  SynthesisOptions options;
  options.use_dvs = true;
  options.seed = 42;

  options.consider_probabilities = false;
  const SynthesisResult baseline = synthesize(system, options);
  options.consider_probabilities = true;
  const SynthesisResult proposed = synthesize(system, options);

  std::printf("\nbaseline (probabilities neglected): %.4f mW, feasible=%d\n",
              baseline.evaluation.avg_power_true * 1e3,
              baseline.evaluation.feasible());
  std::printf("proposed (probabilities considered): %.4f mW, feasible=%d\n",
              proposed.evaluation.avg_power_true * 1e3,
              proposed.evaluation.feasible());
  const double reduction = 100.0 * (baseline.evaluation.avg_power_true -
                                    proposed.evaluation.avg_power_true) /
                           baseline.evaluation.avg_power_true;
  std::printf("reduction: %.2f %%\n", reduction);
  return 0;
}
