// Walk-through of the paper's two motivational examples (Section 2.3)
// with per-task detail: shows how the energy numbers of Fig. 2 arise from
// the type table and how shut-down decides Fig. 3. The corresponding
// bench binaries (fig2_motivation, fig3_multi_impl) assert the numbers;
// this example explains them.
#include <cstdio>

#include "core/allocation_builder.hpp"
#include "core/cosynth.hpp"
#include "tgff/motivational.hpp"

using namespace mmsyn;

namespace {

void explain(const System& system, const MultiModeMapping& mapping,
             const char* title) {
  EvaluationOptions opts;
  opts.keep_schedules = true;
  const Evaluator evaluator(system, opts);
  const CoreAllocation cores = build_core_allocation(system, mapping);
  const Evaluation eval = evaluator.evaluate(mapping, cores);

  std::printf("%s\n", title);
  for (std::size_t m = 0; m < system.omsm.mode_count(); ++m) {
    const Mode& mode = system.omsm.mode(ModeId{static_cast<int>(m)});
    std::printf("  mode %s (Psi=%.1f):\n", mode.name.c_str(),
                mode.probability);
    for (std::size_t t = 0; t < mode.graph.task_count(); ++t) {
      const TaskId id{static_cast<int>(t)};
      const Task& task = mode.graph.task(id);
      const PeId pe = mapping.modes[m].task_to_pe[t];
      const Implementation& impl = system.tech.require(task.type, pe);
      std::printf("    %-5s type %-2s on %-4s  t=%6.2f ms  E=%8.4f mJ\n",
                  task.name.c_str(), system.tech.type_name(task.type).c_str(),
                  system.arch.pe(pe).name.c_str(), impl.exec_time * 1e3,
                  impl.energy() * 1e3);
    }
    const ModeEvaluation& me = eval.modes[m];
    std::printf("    -> dyn %.4f mW + static %.4f mW (weighted by %.1f)\n",
                me.dyn_power * 1e3, me.static_power * 1e3, mode.probability);
  }
  std::printf("  => average power %.4f mW\n\n",
              eval.avg_power_true * 1e3);
}

}  // namespace

int main() {
  std::printf("==== Example 1 (Fig. 2): mode execution probabilities ====\n\n");
  const System ex1 = make_motivational_example1();
  explain(ex1, example1_mapping_without_probabilities(),
          "Fig. 2b — optimal when probabilities are NEGLECTED");
  explain(ex1, example1_mapping_with_probabilities(),
          "Fig. 2c — optimal when probabilities are CONSIDERED");

  std::printf("==== Example 2 (Fig. 3): multiple task implementations ====\n\n");
  const System ex2 = make_motivational_example2();
  explain(ex2, example2_mapping_shared(),
          "Fig. 3b — resource sharing, but no shut-down possible");
  explain(ex2, example2_mapping_multiple_impl(),
          "Fig. 3c — no resource sharing, but component shut-down");

  std::printf(
      "Lesson: the synthesis must weight each mode's power by how long the\n"
      "system actually stays in it, and may implement the same task type\n"
      "multiple times when that lets whole components power down.\n");
  return 0;
}
