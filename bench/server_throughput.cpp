// Throughput and cache-effectiveness bench for the synthesis job server.
//
// Starts an in-process JobServer listening on a scratch unix socket and
// drives it with concurrent wire clients: one wave of unique jobs
// (models x seeds), then a second, identical wave issued only after the
// first fully completes. Wave 2 must be served entirely from the
// cross-job result cache — the bench *asserts* the exact hit count and
// exits nonzero on any miss, making cache regressions loud. Wall-clock
// throughput (jobs/s over both waves) is reported for tracking; the CI
// gate (tools/ci.sh vs BENCH_server_throughput.json) pins only the
// deterministic cache_hit_rate, never machine-dependent timings.
//
//   server_throughput --muls 3,4,5 --seeds 3 --workers 4 --clients 4
//                     [--json PATH]
#include <cstdio>
#include <cstdlib>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.hpp"
#include "model/io.hpp"
#include "server/client.hpp"
#include "server/job_server.hpp"
#include "tgff/suites.hpp"

using namespace mmsyn;

namespace {

std::vector<int> parse_int_list(const std::string& csv) {
  std::vector<int> values;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string item = csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) values.push_back(std::stoi(item));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return values;
}

struct JobSpec {
  std::string system_text;
  std::uint64_t seed = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define_string("muls", "3,4,5",
                      "comma-separated make_mul sizes submitted as models");
  flags.define_int("seeds", 3, "seeds per model (1..N)");
  flags.define_int("population", 24, "GA population per job");
  flags.define_int("generations", 30, "GA generation cap per job");
  flags.define_int("workers", 4, "server synthesis workers");
  flags.define_int("clients", 4, "concurrent wire clients");
  flags.define_string("json", "", "write the machine-readable result here");
  if (!flags.parse(argc, argv)) return 1;

  const std::vector<int> muls = parse_int_list(flags.get_string("muls"));
  const int seeds = static_cast<int>(flags.get_int("seeds"));
  const int clients = std::max(1, static_cast<int>(flags.get_int("clients")));
  if (muls.empty() || seeds < 1) {
    std::fprintf(stderr, "server_throughput: need >=1 model and seed\n");
    return 1;
  }

  char scratch[] = "/tmp/mmsyn_server_throughput_XXXXXX";
  if (::mkdtemp(scratch) == nullptr) {
    std::fprintf(stderr, "server_throughput: mkdtemp failed\n");
    return 1;
  }
  const std::string state_dir = scratch;
  const std::string socket_path = state_dir + "/serve.sock";

  ServerOptions options;
  options.socket_path = socket_path;
  options.state_dir = state_dir;
  options.workers = static_cast<int>(flags.get_int("workers"));
  JobServer server(std::move(options));
  server.start();

  std::vector<JobSpec> specs;
  for (const int mul : muls) {
    const std::string text = system_to_string(make_mul(mul));
    for (int s = 1; s <= seeds; ++s) {
      specs.push_back({text, static_cast<std::uint64_t>(s)});
    }
  }
  const std::size_t unique = specs.size();

  // Each client thread owns one connection and drives its strided share
  // of the wave synchronously (submit, then wait) — so at most `clients`
  // jobs are in flight at once, independent of the wave size.
  auto run_wave = [&]() -> bool {
    std::atomic<bool> ok{true};
    std::vector<std::thread> threads;
    for (int t = 0; t < clients; ++t) {
      threads.emplace_back([&, t] {
        try {
          ServeClient client(socket_path);
          for (std::size_t slot = static_cast<std::size_t>(t);
               slot < specs.size(); slot += static_cast<std::size_t>(clients)) {
            SubmitRequest request;
            request.system_text = specs[slot].system_text;
            request.options.seed = specs[slot].seed;
            request.options.population =
                static_cast<std::int32_t>(flags.get_int("population"));
            request.options.generations =
                static_cast<std::int32_t>(flags.get_int("generations"));
            request.options.report_gantt = false;
            const SubmitOutcome submitted = client.submit(request);
            if (!submitted.accepted) {
              ok.store(false);
              return;
            }
            const WaitOutcome result = client.wait(submitted.ok.job_id);
            if (!result.ok || result.result.outcome != JobOutcome::kOk) {
              ok.store(false);
              return;
            }
          }
        } catch (const std::exception& e) {
          std::fprintf(stderr, "client %d: %s\n", t, e.what());
          ok.store(false);
        }
      });
    }
    for (std::thread& th : threads) th.join();
    return ok.load();
  };

  const auto start = std::chrono::steady_clock::now();
  const bool wave1_ok = run_wave();   // all unique: misses only
  const bool wave2_ok = run_wave();   // identical, after wave 1: hits only
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const StatsReply stats = server.stats();
  server.drain_and_stop();
  std::error_code ec;
  std::filesystem::remove_all(state_dir, ec);

  const std::size_t jobs = 2 * unique;
  const double jobs_per_sec = wall_s > 0.0 ? jobs / wall_s : 0.0;
  const double cache_hit_rate =
      stats.cache_lookups > 0
          ? static_cast<double>(stats.cache_hits) / stats.cache_lookups
          : 0.0;

  std::printf("server_throughput: %zu jobs (%zu unique) in %.3fs — "
              "%.1f jobs/s, cache %llu/%llu\n",
              jobs, unique, wall_s, jobs_per_sec,
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_lookups));

  if (!flags.get_string("json").empty()) {
    std::ofstream out(flags.get_string("json"));
    out << "{\n"
        << "  \"bench\": \"server_throughput\",\n"
        << "  \"muls\": \"" << flags.get_string("muls") << "\",\n"
        << "  \"seeds\": " << seeds << ",\n"
        << "  \"population\": " << flags.get_int("population") << ",\n"
        << "  \"generations\": " << flags.get_int("generations") << ",\n"
        << "  \"workers\": " << flags.get_int("workers") << ",\n"
        << "  \"clients\": " << clients << ",\n"
        << "  \"jobs\": " << jobs << ",\n"
        << "  \"unique\": " << unique << ",\n"
        << "  \"wall_s\": " << wall_s << ",\n"
        << "  \"jobs_per_sec\": " << jobs_per_sec << ",\n"
        << "  \"cache_hits\": " << stats.cache_hits << ",\n"
        << "  \"cache_lookups\": " << stats.cache_lookups << ",\n"
        << "  \"cache_hit_rate\": " << cache_hit_rate << "\n"
        << "}\n";
  }

  if (!wave1_ok || !wave2_ok) {
    std::fprintf(stderr, "server_throughput: FAIL — a job was rejected or "
                         "did not complete ok\n");
    return 1;
  }
  if (stats.cache_hits != unique || stats.cache_lookups != jobs) {
    std::fprintf(stderr,
                 "server_throughput: FAIL — expected exactly %zu cache hits "
                 "over %zu lookups, saw %llu/%llu\n",
                 unique, jobs,
                 static_cast<unsigned long long>(stats.cache_hits),
                 static_cast<unsigned long long>(stats.cache_lookups));
    return 1;
  }
  return 0;
}
