// Model-validation "figure": Eq. (1) vs. Monte-Carlo usage simulation.
//
// The paper's whole objective rests on the abstraction that average power
// equals Σ_O (p̄_dyn + p̄_stat)·Ψ_O. This bench synthesises a subset of the
// suite, random-walks each OMSM for a long simulated usage trace, and
// compares the simulated average power (including FPGA reconfiguration
// overheads, which Eq. (1) ignores) against the analytical value — the
// error and the overhead share quantify how good the abstraction is.
#include <cstdio>
#include <iostream>

#include "bench/harness.hpp"
#include "energy/simulator.hpp"

#include "tgff/smart_phone.hpp"
#include "tgff/suites.hpp"

using namespace mmsyn;

int main(int argc, char** argv) {
  Flags flags = bench::make_standard_flags(/*default_repeats=*/1);
  flags.define_double("sim-hours", 2.0, "simulated usage time [h]");
  if (!flags.parse(argc, argv)) return 1;

  TextTable table;
  table.set_header({"System", "Eq.(1) (mW)", "simulated (mW)", "error (%)",
                    "empirical max |dPsi|", "reconf. time (%)"});

  auto run = [&](const System& system) {
    SynthesisOptions options;
    bench::apply_standard_flags(flags, options);
    options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    const SynthesisResult result = synthesize(system, options);

    SimulationOptions sim_options;
    sim_options.total_time = flags.get_double("sim-hours") * 3600.0;
    sim_options.include_transition_overheads = true;
    sim_options.seed = 2003;
    const SimulationResult sim =
        simulate_usage(system, result.evaluation, sim_options);

    double max_dpsi = 0.0;
    for (std::size_t m = 0; m < system.omsm.mode_count(); ++m)
      max_dpsi = std::max(
          max_dpsi,
          std::abs(sim.empirical_probability[m] -
                   system.omsm.mode(ModeId{static_cast<int>(m)}).probability));

    const double analytic = result.evaluation.avg_power_true * 1e3;
    const double simulated = sim.average_power * 1e3;
    table.add_row(
        {system.name, TextTable::num(analytic), TextTable::num(simulated),
         TextTable::num(100.0 * (simulated - analytic) / analytic, 2),
         TextTable::num(max_dpsi, 4),
         TextTable::num(100.0 * sim.transition_time_total /
                            sim_options.total_time,
                        3)});
    std::fprintf(stderr, "done %s\n", system.name.c_str());
  };

  // mul4 carries an FPGA, exercising the reconfiguration-overhead column.
  for (int idx : {2, 4, 6, 9, 11}) run(make_mul(idx));
  run(make_smart_phone());

  table.print(std::cout,
              "Eq. (1) validation: analytical vs simulated average power");
  std::printf(
      "(simulated %.1f h of usage per system; error <~1%% validates the\n"
      " probability-weighted power abstraction; the last column bounds the\n"
      " reconfiguration overhead Eq. (1) neglects)\n",
      flags.get_double("sim-hours"));
  return 0;
}
