// Power-model backend ablation on the smart-phone benchmark.
//
// Protocol: synthesize once under the pinned `paper` reference backend,
// freeze the champion implementation (mapping + cores), then re-price
// that fixed candidate under every registered power backend — so the
// columns differ only in the power model, never in the search. Two
// orderings are structural and asserted (exit nonzero on violation):
//
//   thermal  >= paper  in Psi-weighted static power (leakage factor >= 1
//                      when ambient == reference temperature), and
//   dpm-idle <= paper  (sleep states are only taken when net-positive).
//
// Additionally each non-reference backend runs its own full synthesis +
// invariant audit, demonstrating the registry end-to-end.
//
//   power_backends [--population 24] [--generations 30] [--seed 1]
//                  [--threads 1] [--dvs] [--json PATH]
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "audit/auditor.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/allocation_builder.hpp"
#include "core/cosynth.hpp"
#include "energy/evaluator.hpp"
#include "pipeline/backends.hpp"
#include "power/backends.hpp"
#include "power/power_model.hpp"
#include "tgff/smart_phone.hpp"

using namespace mmsyn;

namespace {

struct BackendRow {
  std::string name;
  double avg_power_mw = 0.0;         // Eq. 1 with true Psi
  double weighted_static_mw = 0.0;   // Psi-weighted static power
  double idle_saved_mj = 0.0;        // DPM: sum over modes, per period
  double max_temperature_c = 0.0;    // thermal: hottest mode
  bool audited_ok = true;            // full synthesis + audit clean
};

/// Psi-weighted static power of a fixed-candidate evaluation.
double weighted_static(const System& system, const Evaluation& eval) {
  double total = 0.0;
  for (std::size_t m = 0; m < system.omsm.mode_count(); ++m)
    total += system.omsm.mode(ModeId{static_cast<ModeId::value_type>(m)})
                 .probability *
             eval.modes[m].static_power;
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define_int("population", 24, "GA population size");
  flags.define_int("generations", 30, "GA generation cap");
  flags.define_int("seed", 1, "GA seed");
  flags.define_int("threads", 1, "fitness-evaluation threads");
  flags.define_bool("dvs", false, "apply PV-DVS voltage scaling");
  flags.define_string("json", "",
                      "write machine-readable results to this file");
  if (!flags.parse(argc, argv)) return 1;

  const System system = make_smart_phone();

  SynthesisOptions options;
  options.use_dvs = flags.get_bool("dvs");
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  options.ga.population_size = static_cast<int>(flags.get_int("population"));
  options.ga.max_generations = static_cast<int>(flags.get_int("generations"));
  options.ga.num_threads = static_cast<int>(flags.get_int("threads"));

  // ---- Champion under the reference backend. ----------------------------
  options.power = resolve_power_backend("paper");
  const SynthesisResult champion = synthesize(system, options);
  std::fprintf(stderr, "champion synthesised (%s)\n",
               champion.evaluation.feasible() ? "feasible" : "infeasible");

  // ---- Fixed-candidate ablation across every registered backend. --------
  std::vector<BackendRow> rows;
  for (const PowerBackendInfo& backend : power_backends()) {
    EvaluationOptions eopts;
    eopts.use_dvs = options.use_dvs;
    eopts.dvs = options.dvs_final;
    eopts.scheduling_policy = options.scheduling_policy;
    eopts.power = backend.model;
    const Evaluator evaluator(system, eopts);
    const Evaluation eval =
        evaluator.evaluate(champion.mapping, champion.cores);

    BackendRow row;
    row.name = backend.name;
    row.avg_power_mw = eval.avg_power_true * 1e3;
    row.weighted_static_mw = weighted_static(system, eval) * 1e3;
    for (const ModeEvaluation& me : eval.modes) {
      row.idle_saved_mj += me.idle_energy_saved * 1e3;
      row.max_temperature_c = std::max(row.max_temperature_c, me.temperature);
    }

    // End-to-end leg: a full synthesis under this backend must come back
    // auditor-clean (the audit replays the same backend).
    if (backend.model != nullptr && !backend.model->is_reference_model()) {
      SynthesisOptions sopts = options;
      sopts.power = backend.model;
      const SynthesisResult result = synthesize(system, sopts);
      const AuditReport audit =
          audit_result(system, result, audit_options_for(sopts));
      row.audited_ok = audit.passed();
      if (!audit.passed())
        std::fprintf(stderr, "audit FAILED for backend '%s':\n%s",
                     backend.name, audit.to_string().c_str());
    }
    rows.push_back(row);
    std::fprintf(stderr, "done %s\n", backend.name);
  }

  // ---- Structural orderings. --------------------------------------------
  double paper_static = 0.0, thermal_static = 0.0, dpm_static = 0.0;
  bool all_audits_ok = true;
  for (const BackendRow& r : rows) {
    if (r.name == "paper") paper_static = r.weighted_static_mw;
    if (r.name == "thermal") thermal_static = r.weighted_static_mw;
    if (r.name == "dpm-idle") dpm_static = r.weighted_static_mw;
    all_audits_ok = all_audits_ok && r.audited_ok;
  }
  const bool thermal_ok = thermal_static >= paper_static * (1.0 - 1e-12);
  const bool dpm_ok = dpm_static <= paper_static * (1.0 + 1e-12);
  const bool ordering_ok = thermal_ok && dpm_ok;

  TextTable table;
  table.set_header({"Backend", "avg P(mW)", "Psi-static(mW)",
                    "idle saved(mJ)", "max T(C)", "audit"});
  for (const BackendRow& r : rows)
    table.add_row({r.name, TextTable::num(r.avg_power_mw, 4),
                   TextTable::num(r.weighted_static_mw, 6),
                   TextTable::num(r.idle_saved_mj, 6),
                   TextTable::num(r.max_temperature_c, 2),
                   r.audited_ok ? "ok" : "FAILED"});
  table.print(std::cout,
              "Power-backend ablation (fixed champion, smart-phone)");
  std::printf("ordering: thermal %s paper (%s), dpm-idle %s paper (%s)\n",
              thermal_ok ? ">=" : "<", thermal_ok ? "ok" : "VIOLATED",
              dpm_ok ? "<=" : ">", dpm_ok ? "ok" : "VIOLATED");

  if (!flags.get_string("json").empty()) {
    std::ofstream out(flags.get_string("json"));
    out << "{\n"
        << "  \"bench\": \"power_backends\",\n"
        << "  \"population\": " << flags.get_int("population") << ",\n"
        << "  \"generations\": " << flags.get_int("generations") << ",\n"
        << "  \"seed\": " << flags.get_int("seed") << ",\n"
        << "  \"backends\": {\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const BackendRow& r = rows[i];
      out << "    \"" << r.name << "\": {\"avg_power_mw\": " << r.avg_power_mw
          << ", \"weighted_static_mw\": " << r.weighted_static_mw
          << ", \"idle_saved_mj\": " << r.idle_saved_mj
          << ", \"max_temperature_c\": " << r.max_temperature_c
          << ", \"audited_ok\": " << (r.audited_ok ? "true" : "false") << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  },\n"
        << "  \"ordering_ok\": " << (ordering_ok ? "true" : "false") << "\n"
        << "}\n";
  }

  if (!ordering_ok || !all_audits_ok) return 1;
  return 0;
}
