#!/usr/bin/env bash
# Interrupt-resume smoke test: start a checkpointed synthesis run, kill it
# with SIGKILL as soon as the first checkpoint lands, resume from that
# checkpoint, and require the final report to be byte-identical to an
# uninterrupted run with the same seed. This exercises the crash path the
# in-process gtest (tests/core/run_control_test.cpp) cannot: an actual
# dead process and a checkpoint file picked up by a fresh one.
#
# Usage: resume_smoke.sh [path-to-synthesize_file]
set -euo pipefail

BIN=${1:-build/examples/synthesize_file}
if [ ! -x "$BIN" ]; then
  echo "resume_smoke: synthesize_file binary not found at '$BIN'" >&2
  exit 1
fi

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

FLAGS=(--seed 7 --population 48 --generations 400
       --gantt=false --report-timing=false)

"$BIN" --export-mul 9 --output "$WORK/sys.mmsyn" > /dev/null

# Uninterrupted reference run.
"$BIN" --input "$WORK/sys.mmsyn" "${FLAGS[@]}" > "$WORK/full.txt"

# Checkpointed run, SIGKILLed once the first checkpoint is on disk.
"$BIN" --input "$WORK/sys.mmsyn" "${FLAGS[@]}" \
  --checkpoint "$WORK/run.ckpt" --checkpoint-every 2 \
  > /dev/null 2>&1 &
PID=$!
for _ in $(seq 1 400); do
  [ -s "$WORK/run.ckpt" ] && break
  sleep 0.025
done
kill -9 "$PID" 2> /dev/null || true  # may have finished already: still valid
wait "$PID" 2> /dev/null || true

if [ ! -s "$WORK/run.ckpt" ]; then
  echo "resume_smoke: FAIL — no checkpoint was ever written" >&2
  exit 1
fi

# Resume from whatever generation the checkpoint captured and compare.
"$BIN" --input "$WORK/sys.mmsyn" "${FLAGS[@]}" \
  --resume "$WORK/run.ckpt" > "$WORK/resumed.txt"

if diff -u "$WORK/full.txt" "$WORK/resumed.txt"; then
  echo "resume_smoke: PASS — resumed report is byte-identical"
else
  echo "resume_smoke: FAIL — resumed report differs from uninterrupted run" >&2
  exit 1
fi

# Second leg: the same contract under constant mode-cache eviction. A tiny
# --mode-cache-capacity keeps both FIFO tiers saturated, so the checkpoint
# must round-trip the eviction *order* (not just the entries) for the
# resumed run to stay byte-identical — the exact regression fixed in
# ModeEvalCache::insert (duplicate insert at capacity evicting the head).
EVICT_FLAGS=("${FLAGS[@]}" --mode-cache-capacity 4)

"$BIN" --input "$WORK/sys.mmsyn" "${EVICT_FLAGS[@]}" > "$WORK/full_evict.txt"

"$BIN" --input "$WORK/sys.mmsyn" "${EVICT_FLAGS[@]}" \
  --checkpoint "$WORK/evict.ckpt" --checkpoint-every 2 \
  > /dev/null 2>&1 &
PID=$!
for _ in $(seq 1 400); do
  [ -s "$WORK/evict.ckpt" ] && break
  sleep 0.025
done
kill -9 "$PID" 2> /dev/null || true
wait "$PID" 2> /dev/null || true

if [ ! -s "$WORK/evict.ckpt" ]; then
  echo "resume_smoke: FAIL — no eviction-pressure checkpoint written" >&2
  exit 1
fi

"$BIN" --input "$WORK/sys.mmsyn" "${EVICT_FLAGS[@]}" \
  --resume "$WORK/evict.ckpt" > "$WORK/resumed_evict.txt"

if diff -u "$WORK/full_evict.txt" "$WORK/resumed_evict.txt"; then
  echo "resume_smoke: PASS — resume under cache eviction is byte-identical"
else
  echo "resume_smoke: FAIL — resume under cache eviction diverged" >&2
  exit 1
fi
