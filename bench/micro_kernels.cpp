// Micro-benchmarks of the synthesis hot path: list scheduling, DVS-graph
// construction, and PV-DVS, each timed twice — once through the frozen
// pre-rewrite kernels (bench/reference_kernels.*) and once through the
// data-oriented library kernels — on identical inputs. The two results are
// compared before any number is reported, so a speedup claim is only ever
// printed for matching behaviour: list scheduling and graph construction
// must be *bit-identical*; PV-DVS must agree to 1e-6 relative on energies
// (its baseline froze the old bisection voltage solver, which the library
// replaced with an exact closed form — values differ in the low bits, see
// DESIGN.md §12). The speedup ratio is machine-independent (both sides run
// in the same process), which is what the CI perf gate in tools/ci.sh
// tracks via BENCH_micro_kernels.json.
//
// Usage:
//   micro_kernels [--mul N] [--repeats N] [--json PATH] [--min-speedup X]
//
// Exit status is non-zero when any stage output differs bitwise between
// the reference and optimised kernels, or when the combined scheduling+DVS
// speedup falls below --min-speedup.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "bench/reference_kernels.hpp"
#include "core/allocation_builder.hpp"
#include "core/cosynth.hpp"
#include "core/genome.hpp"
#include "dvs/dvs_graph.hpp"
#include "dvs/pv_dvs.hpp"
#include "energy/evaluator.hpp"
#include "sched/list_scheduler.hpp"
#include "tgff/suites.hpp"

namespace {

using namespace mmsyn;
using Clock = std::chrono::steady_clock;

volatile double g_sink = 0.0;

bool bits_equal(double a, double b) {
  std::uint64_t x = 0, y = 0;
  std::memcpy(&x, &a, sizeof(x));
  std::memcpy(&y, &b, sizeof(y));
  return x == y;
}

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!bits_equal(a[i], b[i])) return false;
  return true;
}

/// Best-of-`repeats` wall time of `fn` in nanoseconds (two warm-up runs).
template <typename Fn>
double time_ns(Fn&& fn, int repeats) {
  fn();
  fn();
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = Clock::now();
    fn();
    const auto t1 = Clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
  return best;
}

bool schedules_identical(const ModeSchedule& a, const ModeSchedule& b) {
  if (a.tasks.size() != b.tasks.size() || a.comms.size() != b.comms.size())
    return false;
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    const ScheduledTask& x = a.tasks[i];
    const ScheduledTask& y = b.tasks[i];
    if (x.task != y.task || x.pe != y.pe ||
        x.core_instance != y.core_instance || !bits_equal(x.start, y.start) ||
        !bits_equal(x.finish, y.finish))
      return false;
  }
  for (std::size_t i = 0; i < a.comms.size(); ++i) {
    const ScheduledComm& x = a.comms[i];
    const ScheduledComm& y = b.comms[i];
    if (x.edge != y.edge || x.cl != y.cl || x.local != y.local ||
        !bits_equal(x.start, y.start) || !bits_equal(x.finish, y.finish))
      return false;
  }
  return bits_equal(a.makespan, b.makespan) && a.routable == b.routable;
}

bool graphs_identical(const DvsGraph& g, const refk::RefDvsGraph& r) {
  if (g.node_count() != r.nodes.size()) return false;
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const DvsNode a = g.node(i);
    const DvsNode& b = r.nodes[i];
    if (a.kind != b.kind || a.ref != b.ref || a.pe != b.pe ||
        a.scalable != b.scalable || !bits_equal(a.tmin, b.tmin) ||
        !bits_equal(a.e_nom, b.e_nom) ||
        !bits_equal(a.max_slowdown, b.max_slowdown) ||
        !bits_equal(a.deadline, b.deadline))
      return false;
    const auto ss = g.succs(i);
    const auto ps = g.preds(i);
    if (ss.size() != r.succs[i].size() || ps.size() != r.preds[i].size())
      return false;
    for (std::size_t k = 0; k < ss.size(); ++k)
      if (ss[k] != r.succs[i][k]) return false;
    for (std::size_t k = 0; k < ps.size(); ++k)
      if (ps[k] != r.preds[i][k]) return false;
  }
  if (g.topo.size() != r.topo.size() ||
      g.task_node.size() != r.task_node.size() ||
      g.comm_node.size() != r.comm_node.size())
    return false;
  for (std::size_t i = 0; i < g.topo.size(); ++i)
    if (g.topo[i] != r.topo[i]) return false;
  for (std::size_t i = 0; i < g.task_node.size(); ++i)
    if (g.task_node[i] != r.task_node[i]) return false;
  for (std::size_t i = 0; i < g.comm_node.size(); ++i)
    if (g.comm_node[i] != r.comm_node[i]) return false;
  return true;
}

bool close_rel(double a, double b, double rtol) {
  return std::abs(a - b) <=
         rtol * std::max({std::abs(a), std::abs(b), 1e-30});
}

bool sorted_close(std::vector<double> a, std::vector<double> b, double rtol) {
  if (a.size() != b.size()) return false;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!close_rel(a[i], b[i], rtol)) return false;
  return true;
}

/// PV-DVS parity: nominal energy is solver-independent and must stay
/// bitwise; scaled results must agree to 1e-6 relative (the frozen baseline
/// uses the old bisection voltage solver, the library the closed form).
/// Per-node values are compared as sorted multisets: the ~1e-9 solver delta
/// can flip the greedy's argmax between *identical* tasks in exact-tie
/// states, swapping their (equal) slack shares without changing the set of
/// durations/energies or the total.
bool results_match(const PvDvsResult& a, const PvDvsResult& b) {
  return bits_equal(a.nominal_energy, b.nominal_energy) &&
         a.deadlines_met == b.deadlines_met &&
         close_rel(a.total_energy, b.total_energy, 1e-6) &&
         sorted_close(a.scaled_time, b.scaled_time, 1e-6) &&
         sorted_close(a.voltage, b.voltage, 1e-6) &&
         sorted_close(a.energy, b.energy, 1e-6);
}

struct StageReport {
  std::string name;
  double ref_ns = 0.0;
  double opt_ns = 0.0;
  bool identical = false;

  [[nodiscard]] double speedup() const {
    return opt_ns > 0.0 ? ref_ns / opt_ns : 0.0;
  }
};

struct Fixture {
  System system;
  MultiModeMapping mapping;
  CoreAllocation cores;
  std::vector<ModeSchedule> schedules;     // per mode, from the library
  std::vector<DvsGraph> graphs;            // per mode
  std::vector<refk::RefDvsGraph> ref_graphs;

  explicit Fixture(int mul_index) : system(make_mul(mul_index)) {
    const GenomeCodec codec(system);
    Rng rng(99);
    mapping = codec.decode(codec.random_genome(rng));
    cores = build_core_allocation(system, mapping);
    for (std::size_t m = 0; m < system.omsm.mode_count(); ++m) {
      const ListSchedulerInput input{system.omsm.modes()[m], mapping.modes[m],
                                     system.arch, system.tech,
                                     cores.per_mode[m]};
      schedules.push_back(list_schedule(input));
      graphs.push_back(build_dvs_graph(system.omsm.modes()[m], schedules[m],
                                       mapping.modes[m], system.arch,
                                       system.tech));
      ref_graphs.push_back(refk::ref_build_dvs_graph(
          system.omsm.modes()[m], schedules[m], mapping.modes[m], system.arch,
          system.tech));
    }
  }

  [[nodiscard]] ListSchedulerInput input(std::size_t m) const {
    return {system.omsm.modes()[m], mapping.modes[m], system.arch,
            system.tech, cores.per_mode[m]};
  }
};

void print_stage(std::FILE* out, const StageReport& s) {
  std::fprintf(out, "  %-16s ref %10.0f ns   opt %10.0f ns   %5.2fx   %s\n",
               s.name.c_str(), s.ref_ns, s.opt_ns, s.speedup(),
               s.identical ? "match" : "MISMATCH");
}

}  // namespace

int main(int argc, char** argv) {
  int mul_index = 4;
  int repeats = 30;
  double min_speedup = 0.0;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--mul") {
      mul_index = std::atoi(next());
    } else if (arg == "--repeats") {
      repeats = std::atoi(next());
    } else if (arg == "--min-speedup") {
      min_speedup = std::atof(next());
    } else if (arg == "--json") {
      json_path = next();
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  Fixture f(mul_index);
  const std::size_t mode_count = f.system.omsm.mode_count();

  // ---- Identity: every stage, every mode, before any timing. ------------
  bool identity_schedule = true;
  bool identity_graph = true;
  bool identity_pv_dvs = true;
  for (std::size_t m = 0; m < mode_count; ++m) {
    const ListSchedulerInput input = f.input(m);
    const std::vector<double> ref_prio = refk::ref_scheduling_priorities(input);
    const std::vector<double> opt_prio = scheduling_priorities(input);
    const ModeSchedule ref_sched = refk::ref_list_schedule(input, ref_prio);
    identity_schedule = identity_schedule && bits_equal(ref_prio, opt_prio) &&
                        schedules_identical(ref_sched, f.schedules[m]);
    identity_graph =
        identity_graph && graphs_identical(f.graphs[m], f.ref_graphs[m]);
    identity_pv_dvs =
        identity_pv_dvs &&
        results_match(refk::ref_run_pv_dvs(f.ref_graphs[m], f.system.arch),
                      run_pv_dvs(f.graphs[m], f.system.arch));
  }

  // ---- Timings: each thunk sweeps all modes once. -----------------------
  std::vector<StageReport> stages;
  {
    StageReport s{"list_schedule"};
    s.identical = identity_schedule;
    s.ref_ns = time_ns(
        [&] {
          for (std::size_t m = 0; m < mode_count; ++m) {
            const ListSchedulerInput input = f.input(m);
            g_sink = refk::ref_list_schedule(
                         input, refk::ref_scheduling_priorities(input))
                         .makespan;
          }
        },
        repeats);
    s.opt_ns = time_ns(
        [&] {
          for (std::size_t m = 0; m < mode_count; ++m)
            g_sink = list_schedule(f.input(m)).makespan;
        },
        repeats);
    stages.push_back(s);
  }
  {
    StageReport s{"build_dvs_graph"};
    s.identical = identity_graph;
    s.ref_ns = time_ns(
        [&] {
          for (std::size_t m = 0; m < mode_count; ++m)
            g_sink = static_cast<double>(
                refk::ref_build_dvs_graph(f.system.omsm.modes()[m],
                                          f.schedules[m], f.mapping.modes[m],
                                          f.system.arch, f.system.tech)
                    .nodes.size());
        },
        repeats);
    s.opt_ns = time_ns(
        [&] {
          for (std::size_t m = 0; m < mode_count; ++m)
            g_sink = static_cast<double>(
                build_dvs_graph(f.system.omsm.modes()[m], f.schedules[m],
                                f.mapping.modes[m], f.system.arch,
                                f.system.tech)
                    .node_count());
        },
        repeats);
    stages.push_back(s);
  }
  {
    StageReport s{"pv_dvs"};
    s.identical = identity_pv_dvs;
    s.ref_ns = time_ns(
        [&] {
          for (std::size_t m = 0; m < mode_count; ++m)
            g_sink =
                refk::ref_run_pv_dvs(f.ref_graphs[m], f.system.arch)
                    .total_energy;
        },
        repeats);
    s.opt_ns = time_ns(
        [&] {
          for (std::size_t m = 0; m < mode_count; ++m)
            g_sink = run_pv_dvs(f.graphs[m], f.system.arch).total_energy;
        },
        repeats);
    stages.push_back(s);
  }

  // Informational opt-only timings (no pre-rewrite counterpart survives at
  // this granularity; the evaluator exercises every kernel end-to-end).
  double eval_ns = 0.0, eval_dvs_ns = 0.0;
  {
    const Evaluator evaluator(f.system, EvaluationOptions{});
    eval_ns = time_ns(
        [&] { g_sink = evaluator.evaluate(f.mapping, f.cores).avg_power_true; },
        repeats);
    EvaluationOptions dvs_options;
    dvs_options.use_dvs = true;
    const Evaluator dvs_evaluator(f.system, dvs_options);
    eval_dvs_ns = time_ns(
        [&] {
          g_sink = dvs_evaluator.evaluate(f.mapping, f.cores).avg_power_true;
        },
        repeats);
  }

  double combined_ref = 0.0, combined_opt = 0.0;
  bool all_identical = true;
  for (const StageReport& s : stages) {
    combined_ref += s.ref_ns;
    combined_opt += s.opt_ns;
    all_identical = all_identical && s.identical;
  }
  const double combined_speedup =
      combined_opt > 0.0 ? combined_ref / combined_opt : 0.0;

  std::printf("micro_kernels  fixture mul%d  (%zu modes, best of %d)\n",
              mul_index, mode_count, repeats);
  for (const StageReport& s : stages) print_stage(stdout, s);
  std::printf("  %-16s ref %10.0f ns   opt %10.0f ns   %5.2fx\n", "combined",
              combined_ref, combined_opt, combined_speedup);
  std::printf("  %-16s                  opt %10.0f ns\n", "evaluate", eval_ns);
  std::printf("  %-16s                  opt %10.0f ns\n", "evaluate_dvs",
              eval_dvs_ns);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n"
        << "  \"bench\": \"micro_kernels\",\n"
        << "  \"fixture\": \"mul" << mul_index << "\",\n"
        << "  \"repeats\": " << repeats << ",\n"
        << "  \"stages\": {\n";
    for (std::size_t i = 0; i < stages.size(); ++i) {
      const StageReport& s = stages[i];
      out << "    \"" << s.name << "\": {\"ref_ns\": " << s.ref_ns
          << ", \"opt_ns\": " << s.opt_ns << ", \"speedup\": " << s.speedup()
          << ", \"identical\": " << (s.identical ? "true" : "false") << "}"
          << (i + 1 < stages.size() ? "," : "") << "\n";
    }
    out << "  },\n"
        << "  \"combined\": {\"ref_ns\": " << combined_ref
        << ", \"opt_ns\": " << combined_opt
        << ", \"speedup\": " << combined_speedup << "},\n"
        << "  \"opt_only_ns\": {\"evaluate_candidate\": " << eval_ns
        << ", \"evaluate_candidate_dvs\": " << eval_dvs_ns << "},\n"
        << "  \"identical\": " << (all_identical ? "true" : "false") << "\n"
        << "}\n";
  }

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: reference and optimised kernels disagree bitwise\n");
    return 1;
  }
  if (min_speedup > 0.0 && combined_speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: combined speedup %.2fx below required %.2fx\n",
                 combined_speedup, min_speedup);
    return 1;
  }
  return 0;
}
