// Micro-benchmarks (google-benchmark) of the synthesis kernels: list
// scheduling, DVS-graph construction, PV-DVS, full candidate evaluation,
// and the generator. These bound the GA's per-candidate cost and document
// where the optimisation time of Tables 1–3 goes.
#include <benchmark/benchmark.h>

#include "core/allocation_builder.hpp"
#include "core/cosynth.hpp"
#include "core/genome.hpp"
#include "dvs/dvs_graph.hpp"
#include "energy/evaluator.hpp"
#include "sched/list_scheduler.hpp"
#include "tgff/suites.hpp"

namespace {

using namespace mmsyn;

struct Fixture {
  System system;
  MultiModeMapping mapping;
  CoreAllocation cores;

  explicit Fixture(int mul_index) : system(make_mul(mul_index)) {
    const GenomeCodec codec(system);
    Rng rng(99);
    mapping = codec.decode(codec.random_genome(rng));
    cores = build_core_allocation(system, mapping);
  }
};

Fixture& fixture() {
  static Fixture f(4);  // mul4: 5 modes, ~90 tasks, 3 PEs
  return f;
}

void BM_ListSchedule(benchmark::State& state) {
  Fixture& f = fixture();
  const Mode& mode = f.system.omsm.mode(ModeId{0});
  for (auto _ : state) {
    ModeSchedule s = list_schedule({mode, f.mapping.modes[0], f.system.arch,
                                    f.system.tech, f.cores.per_mode[0]});
    benchmark::DoNotOptimize(s.makespan);
  }
}
BENCHMARK(BM_ListSchedule);

void BM_BuildDvsGraph(benchmark::State& state) {
  Fixture& f = fixture();
  const Mode& mode = f.system.omsm.mode(ModeId{0});
  const ModeSchedule schedule =
      list_schedule({mode, f.mapping.modes[0], f.system.arch, f.system.tech,
                     f.cores.per_mode[0]});
  for (auto _ : state) {
    DvsGraph g = build_dvs_graph(mode, schedule, f.mapping.modes[0],
                                 f.system.arch, f.system.tech);
    benchmark::DoNotOptimize(g.nodes.size());
  }
}
BENCHMARK(BM_BuildDvsGraph);

void BM_PvDvs(benchmark::State& state) {
  Fixture& f = fixture();
  const Mode& mode = f.system.omsm.mode(ModeId{0});
  const ModeSchedule schedule =
      list_schedule({mode, f.mapping.modes[0], f.system.arch, f.system.tech,
                     f.cores.per_mode[0]});
  const DvsGraph graph = build_dvs_graph(mode, schedule, f.mapping.modes[0],
                                         f.system.arch, f.system.tech);
  for (auto _ : state) {
    PvDvsResult r = run_pv_dvs(graph, f.system.arch);
    benchmark::DoNotOptimize(r.total_energy);
  }
}
BENCHMARK(BM_PvDvs);

void BM_EvaluateCandidate(benchmark::State& state) {
  Fixture& f = fixture();
  const Evaluator evaluator(f.system, EvaluationOptions{});
  for (auto _ : state) {
    Evaluation e = evaluator.evaluate(f.mapping, f.cores);
    benchmark::DoNotOptimize(e.avg_power_true);
  }
}
BENCHMARK(BM_EvaluateCandidate);

void BM_EvaluateCandidateDvs(benchmark::State& state) {
  Fixture& f = fixture();
  EvaluationOptions options;
  options.use_dvs = true;
  const Evaluator evaluator(f.system, options);
  for (auto _ : state) {
    Evaluation e = evaluator.evaluate(f.mapping, f.cores);
    benchmark::DoNotOptimize(e.avg_power_true);
  }
}
BENCHMARK(BM_EvaluateCandidateDvs);

void BM_CoreAllocation(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    CoreAllocation a = build_core_allocation(f.system, f.mapping);
    benchmark::DoNotOptimize(a.per_mode.size());
  }
}
BENCHMARK(BM_CoreAllocation);

void BM_GenerateSystem(benchmark::State& state) {
  for (auto _ : state) {
    System s = make_mul(4);
    benchmark::DoNotOptimize(s.total_task_count());
  }
}
BENCHMARK(BM_GenerateSystem);

}  // namespace
