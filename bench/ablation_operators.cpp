// GA-operator ablation: contribution of the search ingredients of
// Section 4.1 (Fig. 4 lines 19–22) and of this implementation's seeding /
// polishing stages.
//
// Configurations (proposed objective, no DVS for speed):
//   full          — everything enabled
//   no-shutdown   — shut-down improvement mutation off
//   no-sweeps     — area/timing/transition infeasibility sweeps off
//   no-seeds      — random initial population only
//   no-polish     — final hill climbing off
// Expected shape: the heuristic seeds are the strongest single
// ingredient. The other ingredients act as safety nets on constrained
// instances, so `full` usually ties them here. Note that seeding *biases*
// the search: occasionally a random-init run escapes to a basin the seeds
// steer away from (a classic memetic-GA trade-off that averages out over
// repeats).
#include <cstdio>
#include <iostream>

#include "bench/harness.hpp"
#include "common/stats.hpp"
#include "tgff/suites.hpp"

using namespace mmsyn;

namespace {

enum class Variant {
  kFull,
  kNoShutdown,
  kNoSweeps,
  kNoSeeds,
  kNoPolish,
  kNoMulticore,  // single core per HW type (Fig. 4 line 05 ablation)
};

double run_variant(const System& system, Variant variant, int repeats,
                   const Flags& flags) {
  SynthesisOptions options;
  bench::apply_standard_flags(flags, options);
  switch (variant) {
    case Variant::kFull:
      break;
    case Variant::kNoShutdown:
      options.ga.shutdown_improvement_rate = 0.0;
      break;
    case Variant::kNoSweeps:
      options.ga.infeasibility_trigger = 1 << 20;
      break;
    case Variant::kNoSeeds:
      options.ga.seed_heuristic_individuals = false;
      break;
    case Variant::kNoPolish:
      options.ga.final_hill_climb_passes = 0;
      break;
    case Variant::kNoMulticore:
      options.allocation.allocate_parallel_cores = false;
      break;
  }
  RunningStats stats;
  for (int r = 0; r < repeats; ++r) {
    options.seed = static_cast<std::uint64_t>(flags.get_int("seed")) +
                   static_cast<std::uint64_t>(r);
    stats.add(synthesize(system, options).evaluation.avg_power_true * 1e3);
  }
  return stats.mean();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = bench::make_standard_flags(/*default_repeats=*/3);
  if (!flags.parse(argc, argv)) return 1;
  const int repeats = static_cast<int>(flags.get_int("repeats"));

  TextTable table;
  table.set_header({"Example", "full", "no-shutdown", "no-sweeps", "no-seeds",
                    "no-polish", "no-multicore", "(mW)"});
  for (const int idx : {1, 4, 6, 12}) {
    const System system = make_mul(idx);
    std::vector<std::string> row{system.name};
    for (const Variant v :
         {Variant::kFull, Variant::kNoShutdown, Variant::kNoSweeps,
          Variant::kNoSeeds, Variant::kNoPolish, Variant::kNoMulticore})
      row.push_back(TextTable::num(run_variant(system, v, repeats, flags)));
    row.push_back("");
    table.add_row(std::move(row));
    std::fprintf(stderr, "done %s\n", system.name.c_str());
  }
  table.print(std::cout,
              "GA ingredient ablation (proposed synthesis, average power)");
  return 0;
}
