// Diagnostic probe (not part of the published tables): dissects one suite
// instance — per-mode power breakdown, core allocations, cross-evaluation
// of each approach's best mapping under both weightings.
#include <cstdio>
#include <cstdlib>

#include "core/cosynth.hpp"
#include "tgff/suites.hpp"

using namespace mmsyn;

namespace {

void dissect(const char* tag, const System& system,
             const SynthesisResult& r) {
  std::printf("---- %s: power(true)=%.3f mW fitness=%.5g gens=%d evals=%ld\n",
              tag, r.evaluation.avg_power_true * 1e3, r.fitness,
              r.generations, r.evaluations);
  for (std::size_t m = 0; m < r.evaluation.modes.size(); ++m) {
    const auto& me = r.evaluation.modes[m];
    const Mode& mode = system.omsm.mode(ModeId{(int)m});
    std::printf(
        "  mode %zu Psi=%.2f period=%.4f dyn=%.3f mW stat=%.3f mW viol=%.2g "
        "PEs:",
        m, mode.probability, mode.period, me.dyn_power * 1e3,
        me.static_power * 1e3, me.timing_violation);
    for (std::size_t p = 0; p < me.pe_active.size(); ++p)
      std::printf("%d", me.pe_active[p] ? 1 : 0);
    std::printf("\n");
  }
  for (PeId p : system.arch.pe_ids()) {
    if (!is_hardware(system.arch.pe(p).kind)) continue;
    std::printf("  PE%d (%s cap=%.0f used=%.0f): ", p.value(),
                to_string(system.arch.pe(p).kind),
                system.arch.pe(p).area_capacity,
                r.evaluation.pe_used_area[p.index()]);
    for (std::size_t m = 0; m < r.evaluation.modes.size(); ++m) {
      std::printf("[m%zu:", m);
      for (const auto& [type, count] : r.cores.cores(ModeId{(int)m}, p).entries())
        std::printf(" %s*%d", system.tech.type_name(type).c_str(), count);
      std::printf("] ");
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int idx = argc > 1 ? std::atoi(argv[1]) : 1;
  const bool dvs = argc > 2 && std::atoi(argv[2]) != 0;
  const System system = make_mul(idx);
  std::printf("%s", describe(system).c_str());

  {  // Compare the knapsack seeds of the two objectives.
    EvaluationOptions u_opts;
    u_opts.weight_override.assign(system.omsm.mode_count(), 1.0);
    const Evaluator u_eval(system, u_opts);
    const Evaluator t_eval(system, EvaluationOptions{});
    MappingGa u_ga(system, u_eval, {}, {}, {}, 1);
    MappingGa t_ga(system, t_eval, {}, {}, {}, 1);
    const Genome u_seed = u_ga.knapsack_seed_genome();
    const Genome t_seed = t_ga.knapsack_seed_genome();
    std::size_t diff = 0;
    for (std::size_t g = 0; g < u_seed.size(); ++g)
      if (u_seed[g] != t_seed[g]) ++diff;
    const auto u_map = u_ga.codec().decode(u_seed);
    const auto t_map = t_ga.codec().decode(t_seed);
    const auto u_cores = build_core_allocation(system, u_map, {});
    const auto t_cores = build_core_allocation(system, t_map, {});
    std::printf(
        "seeds: differ at %zu/%zu genes; uniform-seed true-power=%.3f mW, "
        "prob-seed true-power=%.3f mW\n",
        diff, u_seed.size(),
        t_eval.evaluate(u_map, u_cores).avg_power_true * 1e3,
        t_eval.evaluate(t_map, t_cores).avg_power_true * 1e3);
  }

  SynthesisOptions options;
  options.use_dvs = dvs;
  options.ga.population_size = 64;
  options.ga.max_generations = 600;
  options.ga.stagnation_limit = 80;
  options.seed = 7;

  options.consider_probabilities = false;
  const SynthesisResult base = synthesize(system, options);
  options.consider_probabilities = true;
  const SynthesisResult prop = synthesize(system, options);

  dissect("baseline", system, base);
  dissect("proposed", system, prop);

  // Cross-evaluate: proposed mapping under uniform weights and vice versa.
  EvaluationOptions uniform_opts;
  uniform_opts.use_dvs = dvs;
  uniform_opts.weight_override.assign(system.omsm.mode_count(), 1.0);
  const Evaluator uniform_eval(system, uniform_opts);
  EvaluationOptions true_opts;
  true_opts.use_dvs = dvs;
  const Evaluator true_eval(system, true_opts);

  std::printf(
      "cross: base mapping true-power=%.3f mW, prop mapping uniform-power=%.3f"
      " mW\n",
      true_eval.evaluate(base.mapping, base.cores).avg_power_true * 1e3,
      uniform_eval.evaluate(prop.mapping, prop.cores).avg_power_weighted * 1e3);
  std::printf(
      "objectives: base-uniform=%.3f prop-uniform=%.3f | base-true=%.3f "
      "prop-true=%.3f (mW)\n",
      uniform_eval.evaluate(base.mapping, base.cores).avg_power_weighted * 1e3,
      uniform_eval.evaluate(prop.mapping, prop.cores).avg_power_weighted * 1e3,
      true_eval.evaluate(base.mapping, base.cores).avg_power_true * 1e3,
      true_eval.evaluate(prop.mapping, prop.cores).avg_power_true * 1e3);
  return 0;
}
