// Parallel-scaling benchmark: evaluations/sec of the co-synthesis GA on
// the smart-phone benchmark at 1/2/4/N fitness-evaluation threads, plus a
// determinism check (every thread count must produce the identical
// result for the same seed).
//
//   parallel_scaling [--population 64] [--generations 60] [--seed 1]
//                    [--dvs] [--repeats 1]
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/cosynth.hpp"
#include "tgff/smart_phone.hpp"

using namespace mmsyn;

int main(int argc, char** argv) {
  Flags flags;
  flags.define_int("population", 64, "GA population size");
  flags.define_int("generations", 60, "GA generations (fixed, no early stop)");
  flags.define_int("seed", 1, "GA seed");
  flags.define_bool("dvs", false, "apply PV-DVS inside the loop");
  flags.define_int("repeats", 1, "timing repetitions per thread count");
  if (!flags.parse(argc, argv)) return 1;

  const System system = make_smart_phone();

  SynthesisOptions options;
  options.use_dvs = flags.get_bool("dvs");
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  options.ga.population_size = static_cast<int>(flags.get_int("population"));
  options.ga.max_generations = static_cast<int>(flags.get_int("generations"));
  // Fixed workload for the rate comparison: never stop on stagnation.
  options.ga.stagnation_limit = options.ga.max_generations + 1;

  const int hw =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  std::vector<int> thread_counts{1, 2, 4, hw};
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(
      std::unique(thread_counts.begin(), thread_counts.end()),
      thread_counts.end());

  const int repeats = static_cast<int>(flags.get_int("repeats"));
  struct Row {
    int threads;
    double evals_per_sec;
    double speedup;
    SynthesisResult result;
  };
  std::vector<Row> rows;
  for (const int threads : thread_counts) {
    options.ga.num_threads = threads;
    double best_rate = 0.0;
    SynthesisResult kept;
    for (int r = 0; r < std::max(1, repeats); ++r) {
      SynthesisResult result = synthesize(system, options);
      const double rate = result.elapsed_seconds > 0.0
                              ? static_cast<double>(result.evaluations) /
                                    result.elapsed_seconds
                              : 0.0;
      if (rate >= best_rate) {
        best_rate = rate;
        kept = std::move(result);
      }
    }
    rows.push_back({threads, best_rate, 0.0, std::move(kept)});
  }
  for (Row& row : rows) row.speedup = row.evals_per_sec / rows[0].evals_per_sec;

  TextTable table;
  table.set_header({"threads", "evals/s", "speedup", "fitness", "P(mW)",
                    "evaluations"});
  for (const Row& row : rows)
    table.add_row({std::to_string(row.threads),
                   TextTable::num(row.evals_per_sec, 0),
                   TextTable::num(row.speedup, 2),
                   TextTable::num(row.result.fitness, 6),
                   TextTable::num(row.result.evaluation.avg_power_true * 1e3),
                   std::to_string(row.result.evaluations)});
  table.print(std::cout, "parallel fitness-evaluation scaling (smart phone)");

  // Determinism contract: bit-identical results for every thread count.
  bool deterministic = true;
  for (const Row& row : rows) {
    if (row.result.fitness != rows[0].result.fitness ||
        row.result.evaluations != rows[0].result.evaluations ||
        row.result.generations != rows[0].result.generations ||
        row.result.evaluation.avg_power_true !=
            rows[0].result.evaluation.avg_power_true)
      deterministic = false;
    for (std::size_t m = 0; m < row.result.mapping.modes.size(); ++m)
      if (row.result.mapping.modes[m].task_to_pe !=
          rows[0].result.mapping.modes[m].task_to_pe)
        deterministic = false;
  }
  std::printf("deterministic across thread counts: %s\n",
              deterministic ? "yes" : "NO");
  return deterministic ? 0 : 1;
}
