// Regenerates Table 3: "Results of Smart Phone Experiments".
//
// The 8-mode smart-phone benchmark (GSM codec + MP3 player + digital
// camera on one DVS-GPP + two ASICs + one bus) is synthesised four ways:
// {w/o DVS, with DVS} × {probabilities neglected, probabilities
// considered}. Expected shape (paper): ~30% reduction from the mode
// probabilities at both voltage settings, and a combined reduction of
// roughly two thirds from the fixed-voltage baseline to DVS + proposed
// (2.602 mW → 0.859 mW in the paper).
#include <cstdio>
#include <iostream>

#include "bench/harness.hpp"
#include "tgff/smart_phone.hpp"

int main(int argc, char** argv) {
  using namespace mmsyn;
  Flags flags = bench::make_standard_flags(/*default_repeats=*/5);
  if (!flags.parse(argc, argv)) return 1;

  const System system = make_smart_phone();
  std::printf("%s\n", describe(system).c_str());

  std::vector<bench::ComparisonRow> rows;
  for (const bool dvs : {false, true}) {
    SynthesisOptions options;
    options.use_dvs = dvs;
    bench::apply_standard_flags(flags, options);
    rows.push_back(bench::compare_approaches(
        system, options, static_cast<int>(flags.get_int("repeats")),
        static_cast<std::uint64_t>(flags.get_int("seed")),
        dvs ? "Smart phone with DVS" : "Smart phone w/o DVS"));
    std::cerr << "done " << rows.back().label << "\n";
  }
  bench::print_comparison_table(rows,
                                "Table 3: Results of Smart Phone Experiments");
  const double overall =
      100.0 * (rows[0].baseline_power_mw - rows[1].proposed_power_mw) /
      rows[0].baseline_power_mw;
  std::printf("overall reduction (fixed-voltage baseline -> DVS+proposed): "
              "%.2f %%\n", overall);
  return 0;
}
