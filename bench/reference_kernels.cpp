// Verbatim pre-rewrite kernel implementations. See reference_kernels.hpp.
#include "bench/reference_kernels.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>
#include <vector>

#include "dvs/voltage_model.hpp"
#include "model/architecture.hpp"
#include "model/omsm.hpp"
#include "model/tech_library.hpp"
#include "sched/timeline.hpp"

namespace mmsyn::refk {
namespace {

constexpr double kUnroutablePenalty = 1e6;  // seconds; flags broken routing

std::vector<double> bottom_levels(const TaskGraph& graph,
                                  const ModeMapping& mapping,
                                  const Architecture& arch,
                                  const TechLibrary& tech) {
  const std::size_t n = graph.task_count();
  std::vector<double> exec(n);
  for (std::size_t t = 0; t < n; ++t) {
    const TaskId id{static_cast<TaskId::value_type>(t)};
    exec[t] = tech.require(graph.task(id).type, mapping.task_to_pe[t])
                  .exec_time;
  }
  std::vector<double> level(n, 0.0);
  const auto& topo = graph.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const TaskId u = *it;
    double tail = 0.0;
    for (EdgeId e : graph.out_edges(u)) {
      const TaskEdge& edge = graph.edge(e);
      const PeId src_pe = mapping.task_to_pe[edge.src.index()];
      const PeId dst_pe = mapping.task_to_pe[edge.dst.index()];
      double comm = 0.0;
      if (src_pe != dst_pe) {
        comm = std::numeric_limits<double>::infinity();
        for (ClId cl : arch.links_between(src_pe, dst_pe)) {
          const Cl& link = arch.cl(cl);
          comm = std::min(comm,
                          link.startup_latency + edge.data_bits / link.bandwidth);
        }
        if (!std::isfinite(comm)) comm = kUnroutablePenalty;
      }
      tail = std::max(tail, comm + level[edge.dst.index()]);
    }
    level[u.index()] = exec[u.index()] + tail;
  }
  return level;
}

class PeResources {
 public:
  PeResources(const Pe& pe, const CoreSet& cores, std::size_t type_count)
      : pe_(pe),
        group_offset_(type_count, kNoGroup),
        group_size_(type_count, 0) {
    if (is_software(pe.kind)) {
      timelines_.resize(1);
      return;
    }
    for (const auto& [type, count] : cores.entries()) {
      group_offset_[type.index()] = timelines_.size();
      group_size_[type.index()] = count;
      timelines_.resize(timelines_.size() + static_cast<std::size_t>(count));
    }
  }

  std::pair<double, int> best_slot(TaskTypeId type, double ready,
                                   double duration) {
    if (is_software(pe_.kind)) {
      return {timelines_[0].earliest_fit(ready, duration), 0};
    }
    if (group_offset_[type.index()] == kNoGroup) {
      group_offset_[type.index()] = timelines_.size();
      group_size_[type.index()] = 1;
      timelines_.emplace_back();
    }
    const std::size_t offset = group_offset_[type.index()];
    double best_start = std::numeric_limits<double>::infinity();
    int best_instance = 0;
    const int count = group_size_[type.index()];
    for (int i = 0; i < count; ++i) {
      const double s =
          timelines_[offset + static_cast<std::size_t>(i)].earliest_fit(
              ready, duration);
      if (s < best_start) {
        best_start = s;
        best_instance = i;
      }
    }
    return {best_start, best_instance};
  }

  void reserve(TaskTypeId type, int instance, double start, double duration) {
    if (is_software(pe_.kind)) {
      timelines_[0].reserve(start, duration);
      return;
    }
    const std::size_t idx =
        group_offset_[type.index()] + static_cast<std::size_t>(instance);
    timelines_[idx].reserve(start, duration);
  }

 private:
  static constexpr std::size_t kNoGroup =
      std::numeric_limits<std::size_t>::max();

  const Pe& pe_;
  std::vector<Timeline> timelines_;
  std::vector<std::size_t> group_offset_;
  std::vector<int> group_size_;
};

bool pe_scalable(const Pe& pe) {
  return pe.dvs_enabled && pe.voltage_levels.size() >= 2;
}

double pe_max_slowdown(const Pe& pe) {
  if (!pe_scalable(pe)) return 1.0;
  return VoltageModel(pe.vmax(), pe.threshold_voltage).slowdown(pe.vmin());
}

struct PeSegments {
  struct Segment {
    double start;
    double end;
    int node = -1;
  };
  std::vector<Segment> segments;
  std::vector<int> task_first;
  std::vector<int> task_last;
};

struct NodeModel {
  double vmax = 0.0;
  double vt = 0.0;
  std::vector<double> levels;
};

/// The pre-rewrite inverse delay model: 80-iteration monotone bisection to
/// 1e-9·vmax (the library's VoltageModel now inverts the α=2 law in closed
/// form, which is both tighter and ~10x cheaper — that difference is part
/// of the DVS-stage speedup micro_kernels reports, so the old solver is
/// frozen here with the rest of the baseline).
double ref_voltage_for_slowdown(const VoltageModel& m, double s) {
  if (s <= 1.0) return m.vmax();
  double lo = m.vt() + 1e-9 * (m.vmax() - m.vt());
  double hi = m.vmax();
  if (m.slowdown(lo) < s) return lo;
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (m.slowdown(mid) > s) lo = mid;
    else hi = mid;
    if (hi - lo < 1e-9 * m.vmax()) break;
  }
  return 0.5 * (lo + hi);
}

double ref_continuous_energy(double e_nom, double slowdown, double vmax,
                             double vt) {
  if (slowdown <= 1.0) return e_nom;
  const VoltageModel model(vmax, vt);
  const double v = ref_voltage_for_slowdown(model, slowdown);
  return e_nom * model.energy_factor(v);
}

void forward_pass(const RefDvsGraph& g, const std::vector<double>& t,
                  std::vector<double>& ef) {
  for (int u : g.topo) {
    const auto ui = static_cast<std::size_t>(u);
    double start = 0.0;
    for (int p : g.preds[ui])
      start = std::max(start, ef[static_cast<std::size_t>(p)]);
    ef[ui] = start + t[ui];
  }
}

void backward_pass(const RefDvsGraph& g, const std::vector<double>& t,
                   std::vector<double>& lf) {
  for (auto it = g.topo.rbegin(); it != g.topo.rend(); ++it) {
    const auto ui = static_cast<std::size_t>(*it);
    double limit = g.nodes[ui].deadline;
    for (int s : g.succs[ui]) {
      const auto si = static_cast<std::size_t>(s);
      limit = std::min(limit, lf[si] - t[si]);
    }
    lf[ui] = limit;
  }
}

}  // namespace

std::vector<double> ref_scheduling_priorities(const ListSchedulerInput& input) {
  const TaskGraph& graph = input.mode.graph;
  const std::size_t n = graph.task_count();
  std::vector<double> priority;
  switch (input.policy) {
    case SchedulingPolicy::kBottomLevel:
      priority = bottom_levels(graph, input.mapping, input.arch, input.tech);
      break;
    case SchedulingPolicy::kTopoOrder:
      priority.resize(n);
      for (std::size_t t = 0; t < n; ++t)
        priority[t] = -static_cast<double>(t);
      break;
    case SchedulingPolicy::kLongestTask:
      priority.resize(n);
      for (std::size_t t = 0; t < n; ++t) {
        const TaskId id{static_cast<TaskId::value_type>(t)};
        priority[t] =
            input.tech.require(graph.task(id).type, input.mapping.task_to_pe[t])
                .exec_time;
      }
      break;
  }
  return priority;
}

ModeSchedule ref_list_schedule(const ListSchedulerInput& input,
                               const std::vector<double>& priority) {
  const TaskGraph& graph = input.mode.graph;
  const std::size_t n = graph.task_count();
  assert(priority.size() == n);

  ModeSchedule result;
  result.tasks.resize(n);
  result.comms.resize(graph.edge_count());

  std::vector<PeResources> pe_resources;
  pe_resources.reserve(input.arch.pe_count());
  for (PeId p : input.arch.pe_ids())
    pe_resources.emplace_back(input.arch.pe(p), input.hw_cores[p.index()],
                              input.tech.type_count());
  std::vector<Timeline> cl_timelines(input.arch.cl_count());

  std::vector<std::size_t> unscheduled_preds(n, 0);
  for (std::size_t t = 0; t < n; ++t)
    unscheduled_preds[t] =
        graph.in_edges(TaskId{static_cast<TaskId::value_type>(t)}).size();

  std::vector<TaskId> ready;
  for (std::size_t t = 0; t < n; ++t)
    if (unscheduled_preds[t] == 0)
      ready.push_back(TaskId{static_cast<TaskId::value_type>(t)});

  std::size_t scheduled = 0;
  while (!ready.empty()) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < ready.size(); ++i) {
      const double a = priority[ready[i].index()];
      const double b = priority[ready[best].index()];
      if (a > b || (a == b && ready[i] < ready[best])) best = i;
    }
    const TaskId u = ready[best];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best));

    const PeId pe = input.mapping.task_to_pe[u.index()];
    const Task& task = graph.task(u);
    const double exec = input.tech.require(task.type, pe).exec_time;

    double est = 0.0;
    for (EdgeId e : graph.in_edges(u)) {
      const TaskEdge& edge = graph.edge(e);
      const ScheduledTask& pred = result.tasks[edge.src.index()];
      ScheduledComm& comm = result.comms[e.index()];
      comm.edge = e;
      const PeId src_pe = input.mapping.task_to_pe[edge.src.index()];
      if (src_pe == pe) {
        comm.local = true;
        comm.cl = ClId::invalid();
        comm.start = comm.finish = pred.finish;
        est = std::max(est, pred.finish);
        continue;
      }
      comm.local = false;
      const auto links = input.arch.links_between(src_pe, pe);
      if (links.empty()) {
        result.routable = false;
        comm.cl = ClId::invalid();
        comm.start = pred.finish;
        comm.finish = pred.finish + kUnroutablePenalty;
        est = std::max(est, comm.finish);
        continue;
      }
      double best_finish = std::numeric_limits<double>::infinity();
      double best_start = 0.0;
      ClId best_cl;
      for (ClId cl : links) {
        const Cl& link = input.arch.cl(cl);
        const double dur =
            link.startup_latency + edge.data_bits / link.bandwidth;
        const double s =
            cl_timelines[cl.index()].earliest_fit(pred.finish, dur);
        if (s + dur < best_finish) {
          best_finish = s + dur;
          best_start = s;
          best_cl = cl;
        }
      }
      const Cl& link = input.arch.cl(best_cl);
      const double dur =
          link.startup_latency + edge.data_bits / link.bandwidth;
      cl_timelines[best_cl.index()].reserve(best_start, dur);
      comm.cl = best_cl;
      comm.start = best_start;
      comm.finish = best_start + dur;
      est = std::max(est, comm.finish);
    }

    auto [start, instance] =
        pe_resources[pe.index()].best_slot(task.type, est, exec);
    pe_resources[pe.index()].reserve(task.type, instance, start, exec);

    ScheduledTask& st = result.tasks[u.index()];
    st.task = u;
    st.pe = pe;
    st.core_instance = instance;
    st.start = start;
    st.finish = start + exec;
    result.makespan = std::max(result.makespan, st.finish);
    ++scheduled;

    for (EdgeId e : graph.out_edges(u)) {
      const TaskId v = graph.edge(e).dst;
      if (--unscheduled_preds[v.index()] == 0) ready.push_back(v);
    }
  }
  assert(scheduled == n && "task graph must be acyclic");
  for (const ScheduledComm& c : result.comms)
    result.makespan = std::max(result.makespan, c.finish);
  return result;
}

RefDvsGraph ref_build_dvs_graph(const Mode& mode, const ModeSchedule& schedule,
                                const ModeMapping& mapping,
                                const Architecture& arch,
                                const TechLibrary& tech, bool scale_hardware) {
  (void)mapping;
  const TaskGraph& graph = mode.graph;
  const std::size_t n_tasks = graph.task_count();
  const std::size_t n_edges = graph.edge_count();
  const double eps = 1e-9 * std::max(1.0, schedule.makespan);

  RefDvsGraph g;
  g.task_node.assign(n_tasks, -1);
  g.comm_node.assign(n_edges, -1);

  auto task_limit = [&](TaskId t) {
    double limit = mode.period;
    if (const auto& dl = graph.task(t).deadline)
      limit = std::min(limit, *dl);
    return limit;
  };

  auto add_node = [&](DvsNode node) {
    g.nodes.push_back(node);
    g.succs.emplace_back();
    g.preds.emplace_back();
    return static_cast<int>(g.nodes.size() - 1);
  };
  auto add_edge = [&](int u, int v) {
    if (u == v) return;
    g.succs[static_cast<std::size_t>(u)].push_back(v);
    g.preds[static_cast<std::size_t>(v)].push_back(u);
  };

  std::vector<bool> is_dvs_hw(arch.pe_count(), false);
  for (PeId p : arch.pe_ids()) {
    const Pe& pe = arch.pe(p);
    is_dvs_hw[p.index()] =
        scale_hardware && is_hardware(pe.kind) && pe_scalable(pe);
  }

  for (std::size_t t = 0; t < n_tasks; ++t) {
    const TaskId id{static_cast<TaskId::value_type>(t)};
    const ScheduledTask& st = schedule.tasks[t];
    if (is_dvs_hw[st.pe.index()]) continue;
    const Pe& pe = arch.pe(st.pe);
    const Implementation& impl = tech.require(graph.task(id).type, st.pe);
    DvsNode node;
    node.kind = DvsNodeKind::kTask;
    node.ref = static_cast<int>(t);
    node.pe = st.pe;
    node.tmin = st.duration();
    node.e_nom = impl.energy();
    node.scalable = is_software(pe.kind) && pe_scalable(pe);
    node.max_slowdown = node.scalable ? pe_max_slowdown(pe) : 1.0;
    node.deadline = task_limit(id);
    g.task_node[t] = add_node(node);
  }

  std::vector<PeSegments> pe_segments(arch.pe_count());
  for (PeId p : arch.pe_ids()) {
    if (!is_dvs_hw[p.index()]) continue;
    PeSegments& ps = pe_segments[p.index()];
    ps.task_first.assign(n_tasks, -1);
    ps.task_last.assign(n_tasks, -1);

    std::vector<std::size_t> hosted;
    for (std::size_t t = 0; t < n_tasks; ++t)
      if (schedule.tasks[t].pe == p) hosted.push_back(t);
    if (hosted.empty()) continue;

    std::vector<double> cuts;
    for (std::size_t t : hosted) {
      cuts.push_back(schedule.tasks[t].start);
      cuts.push_back(schedule.tasks[t].finish);
    }
    for (std::size_t e = 0; e < n_edges; ++e) {
      const TaskEdge& edge = graph.edge(EdgeId{static_cast<EdgeId::value_type>(e)});
      if (schedule.tasks[edge.dst.index()].pe != p) continue;
      const ScheduledComm& comm = schedule.comms[e];
      if (!comm.local) cuts.push_back(comm.finish);
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end(),
                           [&](double a, double b) { return b - a < eps; }),
               cuts.end());

    const Pe& pe = arch.pe(p);
    const double slowdown_cap = pe_max_slowdown(pe);

    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
      const double a = cuts[i];
      const double b = cuts[i + 1];
      double power = 0.0;
      double deadline = mode.period;
      bool any_active = false;
      for (std::size_t t : hosted) {
        const ScheduledTask& st = schedule.tasks[t];
        if (st.start <= a + eps && st.finish >= b - eps) {
          any_active = true;
          const TaskId id{static_cast<TaskId::value_type>(t)};
          power += tech.require(graph.task(id).type, p).dyn_power;
          if (std::abs(st.finish - b) < eps)
            deadline = std::min(deadline, task_limit(id));
        }
      }
      if (!any_active) continue;

      DvsNode node;
      node.kind = DvsNodeKind::kSegment;
      node.ref = static_cast<int>(ps.segments.size());
      node.pe = p;
      node.tmin = b - a;
      node.e_nom = power * (b - a);
      node.scalable = true;
      node.max_slowdown = slowdown_cap;
      node.deadline = deadline;
      const int idx = add_node(node);
      ps.segments.push_back({a, b, idx});
    }

    for (std::size_t t : hosted) {
      const ScheduledTask& st = schedule.tasks[t];
      for (std::size_t s = 0; s < ps.segments.size(); ++s) {
        const auto& seg = ps.segments[s];
        if (std::abs(seg.start - st.start) < eps && ps.task_first[t] == -1)
          ps.task_first[t] = static_cast<int>(s);
        if (std::abs(seg.end - st.finish) < eps)
          ps.task_last[t] = static_cast<int>(s);
      }
      assert(ps.task_first[t] >= 0 && ps.task_last[t] >= 0);
      g.task_node[t] = ps.segments[static_cast<std::size_t>(ps.task_last[t])].node;
    }
    for (std::size_t s = 0; s + 1 < ps.segments.size(); ++s)
      add_edge(ps.segments[s].node, ps.segments[s + 1].node);
  }

  for (std::size_t e = 0; e < n_edges; ++e) {
    const ScheduledComm& comm = schedule.comms[e];
    if (comm.local) continue;
    DvsNode node;
    node.kind = DvsNodeKind::kComm;
    node.ref = static_cast<int>(e);
    node.pe = PeId::invalid();
    node.tmin = comm.duration();
    node.e_nom = comm.cl.valid()
                     ? arch.cl(comm.cl).transfer_power * comm.duration()
                     : 0.0;
    node.scalable = false;
    node.max_slowdown = 1.0;
    node.deadline = mode.period;
    g.comm_node[e] = add_node(node);
  }

  auto in_node_for = [&](TaskId dst, double arrival) {
    const ScheduledTask& st = schedule.tasks[dst.index()];
    if (!is_dvs_hw[st.pe.index()]) return g.task_node[dst.index()];
    const PeSegments& ps = pe_segments[st.pe.index()];
    for (const auto& seg : ps.segments)
      if (seg.start >= arrival - eps) return seg.node;
    return g.task_node[dst.index()];
  };

  for (std::size_t e = 0; e < n_edges; ++e) {
    const TaskEdge& edge = graph.edge(EdgeId{static_cast<EdgeId::value_type>(e)});
    const int out_node = g.task_node[edge.src.index()];
    const ScheduledComm& comm = schedule.comms[e];
    if (comm.local) {
      add_edge(out_node, in_node_for(edge.dst, comm.finish));
    } else {
      const int cn = g.comm_node[e];
      add_edge(out_node, cn);
      add_edge(cn, in_node_for(edge.dst, comm.finish));
    }
  }

  for (PeId p : arch.pe_ids()) {
    if (is_dvs_hw[p.index()]) continue;
    const Pe& pe = arch.pe(p);
    if (is_software(pe.kind)) {
      std::vector<std::size_t> hosted;
      for (std::size_t t = 0; t < n_tasks; ++t)
        if (schedule.tasks[t].pe == p) hosted.push_back(t);
      std::sort(hosted.begin(), hosted.end(), [&](std::size_t a, std::size_t b) {
        return schedule.tasks[a].start < schedule.tasks[b].start;
      });
      for (std::size_t i = 0; i + 1 < hosted.size(); ++i)
        add_edge(g.task_node[hosted[i]], g.task_node[hosted[i + 1]]);
    } else {
      std::map<std::pair<TaskTypeId, int>, std::vector<std::size_t>> groups;
      for (std::size_t t = 0; t < n_tasks; ++t) {
        const ScheduledTask& st = schedule.tasks[t];
        if (st.pe != p) continue;
        const TaskId id{static_cast<TaskId::value_type>(t)};
        groups[{graph.task(id).type, st.core_instance}].push_back(t);
      }
      for (auto& [key, hosted] : groups) {
        std::sort(hosted.begin(), hosted.end(),
                  [&](std::size_t a, std::size_t b) {
                    return schedule.tasks[a].start < schedule.tasks[b].start;
                  });
        for (std::size_t i = 0; i + 1 < hosted.size(); ++i)
          add_edge(g.task_node[hosted[i]], g.task_node[hosted[i + 1]]);
      }
    }
  }
  for (ClId c : arch.cl_ids()) {
    std::vector<std::size_t> on_link;
    for (std::size_t e = 0; e < n_edges; ++e)
      if (!schedule.comms[e].local && schedule.comms[e].cl == c)
        on_link.push_back(e);
    std::sort(on_link.begin(), on_link.end(), [&](std::size_t a, std::size_t b) {
      return schedule.comms[a].start < schedule.comms[b].start;
    });
    for (std::size_t i = 0; i + 1 < on_link.size(); ++i)
      add_edge(g.comm_node[on_link[i]], g.comm_node[on_link[i + 1]]);
  }

  const std::size_t n = g.nodes.size();
  std::vector<std::size_t> indegree(n, 0);
  for (std::size_t u = 0; u < n; ++u)
    for (int v : g.succs[u]) indegree[static_cast<std::size_t>(v)]++;
  g.topo.reserve(n);
  std::vector<int> frontier;
  for (std::size_t u = 0; u < n; ++u)
    if (indegree[u] == 0) frontier.push_back(static_cast<int>(u));
  std::size_t cursor = 0;
  while (cursor < frontier.size()) {
    const int u = frontier[cursor++];
    g.topo.push_back(u);
    for (int v : g.succs[static_cast<std::size_t>(u)])
      if (--indegree[static_cast<std::size_t>(v)] == 0) frontier.push_back(v);
  }
  if (g.topo.size() != n)
    throw std::logic_error("ref_build_dvs_graph: constructed graph is cyclic");
  return g;
}

PvDvsResult ref_run_pv_dvs(const RefDvsGraph& g, const Architecture& arch,
                           const PvDvsOptions& options) {
  const std::size_t n = g.nodes.size();
  PvDvsResult result;
  result.scaled_time.resize(n);
  result.voltage.assign(n, 0.0);
  result.energy.resize(n);

  std::vector<NodeModel> models(n);
  std::vector<int> scalable;
  for (std::size_t i = 0; i < n; ++i) {
    const DvsNode& node = g.nodes[i];
    result.scaled_time[i] = node.tmin;
    result.nominal_energy += node.e_nom;
    if (node.scalable && node.pe.valid()) {
      const Pe& pe = arch.pe(node.pe);
      models[i] = {pe.vmax(), pe.threshold_voltage, pe.voltage_levels};
      result.voltage[i] = pe.vmax();
      if (node.tmin > 0.0 && node.e_nom > 0.0)
        scalable.push_back(static_cast<int>(i));
    } else if (node.pe.valid()) {
      result.voltage[i] = arch.pe(node.pe).vmax();
    }
  }

  std::vector<double>& t = result.scaled_time;
  std::vector<double> ef(n, 0.0), lf(n, 0.0);

  auto node_energy_continuous = [&](std::size_t i, double ti) {
    const DvsNode& node = g.nodes[i];
    if (node.tmin <= 0.0) return node.e_nom;
    return ref_continuous_energy(node.e_nom, ti / node.tmin, models[i].vmax,
                                 models[i].vt);
  };

  if (!scalable.empty()) {
    const double gain_floor =
        std::max(result.nominal_energy, 1e-30) * options.min_relative_gain;
    const int max_iterations =
        options.max_iterations_per_node * static_cast<int>(scalable.size());

    std::vector<double> descent(n, 0.0);
    auto refresh_descent = [&](std::size_t ui) {
      const DvsNode& node = g.nodes[ui];
      const double h = 0.01 * node.tmin;
      descent[ui] = (node_energy_continuous(ui, t[ui]) -
                     node_energy_continuous(ui, t[ui] + h)) /
                    h;
    };
    for (int u : scalable) refresh_descent(static_cast<std::size_t>(u));

    for (int iter = 0; iter < max_iterations; ++iter) {
      forward_pass(g, t, ef);
      backward_pass(g, t, lf);

      double best_gain = 0.0;
      int best_node = -1;
      double best_step = 0.0;
      for (int u : scalable) {
        const auto ui = static_cast<std::size_t>(u);
        const DvsNode& node = g.nodes[ui];
        const double slack = lf[ui] - ef[ui];
        const double cap = node.tmin * node.max_slowdown - t[ui];
        const double avail = std::min(slack, cap);
        if (avail <= 1e-12 * std::max(1.0, node.tmin)) continue;
        const double step = options.step_fraction * avail;
        const double gain = descent[ui] * step;
        if (gain > best_gain) {
          best_gain = gain;
          best_node = u;
          best_step = step;
        }
      }
      if (best_node < 0 || best_gain < gain_floor) break;
      const auto bi = static_cast<std::size_t>(best_node);
      t[bi] += best_step;
      refresh_descent(bi);
    }
  }

  forward_pass(g, t, ef);
  result.deadlines_met = true;
  for (std::size_t i = 0; i < n; ++i) {
    const DvsNode& node = g.nodes[i];
    if (ef[i] > node.deadline * (1.0 + 1e-9) + 1e-12)
      result.deadlines_met = false;
    if (!node.scalable || node.tmin <= 0.0 || node.e_nom <= 0.0) {
      result.energy[i] = node.e_nom;
    } else {
      const VoltageModel model(models[i].vmax, models[i].vt);
      result.voltage[i] = ref_voltage_for_slowdown(model, t[i] / node.tmin);
      result.energy[i] =
          options.discrete_voltages
              ? discrete_energy(node.e_nom, node.tmin, t[i], models[i].levels,
                                models[i].vt)
              : node.e_nom * model.energy_factor(result.voltage[i]);
    }
    result.total_energy += result.energy[i];
  }
  return result;
}

}  // namespace mmsyn::refk
