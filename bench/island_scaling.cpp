// Island-scaling benchmark: the island-model GA against the
// single-population GA at an equal evaluation budget (N islands of P/N
// individuals vs one population of P), plus the wall-clock speedup each
// island count gains from running its shards on N threads instead of 1.
//
// Two hard gates run in-process and fail the benchmark (nonzero exit):
//  * determinism — every island configuration must produce bit-identical
//    results at 1 thread and at N threads;
//  * equal-budget quality — the best island configuration must be at
//    least as good (champion fitness) as the single population.
//
// The JSON (--json) is tracked as BENCH_island_scaling.json;
// tools/ci.sh gates the fitness-per-wallclock ratio against it. On a
// single-core host the speedup column degrades to ~1x by construction —
// the ratio gate still holds because both sides slow down together.
//
//   island_scaling [--population 48] [--generations 60] [--seed 1]
//                  [--islands-list 2,4] [--migration-interval 5]
//                  [--migrants 2] [--json PATH]
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/cosynth.hpp"
#include "tgff/smart_phone.hpp"

using namespace mmsyn;

namespace {

bool results_identical(const SynthesisResult& a, const SynthesisResult& b) {
  if (a.fitness != b.fitness || a.evaluations != b.evaluations ||
      a.generations != b.generations ||
      a.evaluation.avg_power_true != b.evaluation.avg_power_true)
    return false;
  if (a.mapping.modes.size() != b.mapping.modes.size()) return false;
  for (std::size_t m = 0; m < a.mapping.modes.size(); ++m)
    if (a.mapping.modes[m].task_to_pe != b.mapping.modes[m].task_to_pe)
      return false;
  return true;
}

/// Quality per second: higher is better (fitness is minimised and
/// positive on this fixture).
double fitness_per_wallclock(const SynthesisResult& r) {
  if (r.fitness <= 0.0 || r.elapsed_seconds <= 0.0) return 0.0;
  return 1.0 / (r.fitness * r.elapsed_seconds);
}

std::vector<int> parse_list(const std::string& csv) {
  std::vector<int> values;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) values.push_back(std::stoi(item));
  return values;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define_int("population", 48,
                   "total individuals across all islands (the single-"
                   "population baseline uses all of them in one shard)");
  flags.define_int("generations", 60, "generation cap (fixed workload)");
  flags.define_int("seed", 1, "GA seed");
  flags.define_string("islands-list", "2,4",
                      "comma-separated island counts to benchmark");
  flags.define_int("migration-interval", 5,
                   "generations between migration barriers");
  flags.define_int("migrants", 2, "elites exchanged per barrier");
  flags.define_string("json", "", "write the machine-readable result here");
  if (!flags.parse(argc, argv)) return 1;

  const System system = make_smart_phone();
  const int population = static_cast<int>(flags.get_int("population"));
  const int generations = static_cast<int>(flags.get_int("generations"));
  const int hw =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));

  SynthesisOptions base;
  base.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  base.ga.max_generations = generations;
  base.ga.stagnation_limit = generations + 1;  // fixed workload
  base.migration_interval =
      static_cast<int>(flags.get_int("migration-interval"));
  base.migrants = static_cast<int>(flags.get_int("migrants"));

  // Single-population baseline: the whole budget in one shard. The
  // untimed warmup run faults caches and code in first, so the baseline —
  // the denominator of every ratio below — is not the one cold
  // measurement of the process.
  SynthesisOptions single = base;
  single.ga.population_size = population;
  single.ga.num_threads = 1;
  (void)synthesize(system, single);
  const SynthesisResult baseline = synthesize(system, single);
  const double baseline_fpw = fitness_per_wallclock(baseline);

  struct Row {
    int islands;
    double wall_one;     // seconds at 1 thread
    double wall_shards;  // seconds at `islands` threads
    double speedup;
    double fpw_ratio;  // fitness-per-wallclock vs the single population
    bool identical;
    SynthesisResult result;  // the N-thread run
  };
  std::vector<Row> rows;
  bool all_identical = true;
  bool budget_ok = false;

  for (const int islands : parse_list(flags.get_string("islands-list"))) {
    if (islands < 2 || population / islands < 4) {
      std::fprintf(stderr, "skipping --islands %d (population %d too small)\n",
                   islands, population);
      continue;
    }
    SynthesisOptions sharded = base;
    sharded.islands = islands;
    // Equal budget: N islands of P/N individuals over the same
    // generation cap evaluate approximately the same cohort count as the
    // single population of P.
    sharded.ga.population_size = population / islands;

    sharded.ga.num_threads = 1;
    SynthesisResult serial = synthesize(system, sharded);
    sharded.ga.num_threads = islands;
    SynthesisResult parallel = synthesize(system, sharded);

    Row row;
    row.islands = islands;
    row.wall_one = serial.elapsed_seconds;
    row.wall_shards = parallel.elapsed_seconds;
    row.speedup = parallel.elapsed_seconds > 0.0
                      ? serial.elapsed_seconds / parallel.elapsed_seconds
                      : 0.0;
    row.identical = results_identical(serial, parallel);
    all_identical = all_identical && row.identical;
    row.fpw_ratio = baseline_fpw > 0.0
                        ? fitness_per_wallclock(parallel) / baseline_fpw
                        : 0.0;
    if (parallel.fitness <= baseline.fitness) budget_ok = true;
    row.result = std::move(parallel);
    rows.push_back(std::move(row));
  }

  TextTable table;
  table.set_header({"islands", "fitness", "evaluations", "wall 1t (s)",
                    "wall Nt (s)", "speedup", "fpw ratio", "identical"});
  table.add_row({"1 (single)", TextTable::num(baseline.fitness, 6),
                 std::to_string(baseline.evaluations),
                 TextTable::num(baseline.elapsed_seconds, 3), "-", "-",
                 "1.00", "-"});
  for (const Row& row : rows)
    table.add_row({std::to_string(row.islands),
                   TextTable::num(row.result.fitness, 6),
                   std::to_string(row.result.evaluations),
                   TextTable::num(row.wall_one, 3),
                   TextTable::num(row.wall_shards, 3),
                   TextTable::num(row.speedup, 2),
                   TextTable::num(row.fpw_ratio, 2),
                   row.identical ? "yes" : "NO"});
  table.print(std::cout,
              "island-model GA vs single population (equal budget, smart "
              "phone)");
  std::printf("hardware threads: %d\n", hw);

  double best_ratio = 0.0;
  for (const Row& row : rows) best_ratio = std::max(best_ratio, row.fpw_ratio);

  // Deterministic gate metric: champion quality at an equal evaluation
  // budget, single-population fitness over the best island fitness (>= 1
  // means the islands are no worse). Every term is a pure function of
  // (seed, islands, schedule), so — unlike the wall-clock ratios — this
  // is bit-stable across runs and machines and safe to gate tightly.
  double quality_ratio = 0.0;
  for (const Row& row : rows)
    if (row.result.fitness > 0.0)
      quality_ratio =
          std::max(quality_ratio, baseline.fitness / row.result.fitness);

  if (!flags.get_string("json").empty()) {
    std::ofstream out(flags.get_string("json"));
    out << "{\n"
        << "  \"bench\": \"island_scaling\",\n"
        << "  \"fixture\": \"smart_phone\",\n"
        << "  \"population\": " << population << ",\n"
        << "  \"generations\": " << generations << ",\n"
        << "  \"migration_interval\": " << base.migration_interval << ",\n"
        << "  \"migrants\": " << base.migrants << ",\n"
        << "  \"cores\": " << hw << ",\n"
        << "  \"single\": {\"fitness\": " << baseline.fitness
        << ", \"wall_s\": " << baseline.elapsed_seconds
        << ", \"evaluations\": " << baseline.evaluations << "},\n"
        << "  \"islands\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      out << "    {\"islands\": " << row.islands
          << ", \"fitness\": " << row.result.fitness
          << ", \"evaluations\": " << row.result.evaluations
          << ", \"wall_1t_s\": " << row.wall_one
          << ", \"wall_nt_s\": " << row.wall_shards
          << ", \"speedup\": " << row.speedup
          << ", \"fitness_per_wallclock_ratio\": " << row.fpw_ratio
          << ", \"identical\": " << (row.identical ? "true" : "false") << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"best_fitness_per_wallclock_ratio\": " << best_ratio << ",\n"
        << "  \"equal_budget_quality_ratio\": " << quality_ratio << ",\n"
        << "  \"identical\": " << (all_identical ? "true" : "false") << "\n"
        << "}\n";
  }

  if (!all_identical) {
    std::fprintf(stderr,
                 "island_scaling: FAIL (island results differ across thread "
                 "counts — the determinism contract is broken)\n");
    return 1;
  }
  if (!rows.empty() && !budget_ok) {
    std::fprintf(stderr,
                 "island_scaling: FAIL (no island configuration matched the "
                 "single population at an equal evaluation budget)\n");
    return 1;
  }
  return 0;
}
