// Probability-skew sweep — quantifying the paper's core message.
//
// Holding everything else fixed, the dominant mode's execution probability
// Ψ₀ sweeps from uniform to extreme; for each point the proposed and the
// probability-neglecting syntheses run, and the reduction is reported.
// Expected shape: ~0 % at the uniform point (the approaches coincide by
// construction) rising monotonically (in trend) with the skew — mode
// execution probabilities matter exactly as much as they are uneven.
#include <cstdio>
#include <iostream>

#include "bench/harness.hpp"
#include "common/stats.hpp"
#include "tgff/suites.hpp"

using namespace mmsyn;

namespace {

/// Rescales mode probabilities: dominant mode 0 gets `psi0`, the others
/// keep their relative proportions.
System with_dominant_probability(System system, double psi0) {
  Omsm& omsm = system.omsm;
  double rest = 0.0;
  for (std::size_t m = 1; m < omsm.mode_count(); ++m)
    rest += omsm.mode(ModeId{static_cast<int>(m)}).probability;
  omsm.mode(ModeId{0}).probability = psi0;
  for (std::size_t m = 1; m < omsm.mode_count(); ++m) {
    Mode& mode = omsm.mode(ModeId{static_cast<int>(m)});
    mode.probability *= (1.0 - psi0) / rest;
  }
  return system;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = bench::make_standard_flags(/*default_repeats=*/3);
  flags.define_int("instance", 9, "suite instance to sweep (mulN)");
  if (!flags.parse(argc, argv)) return 1;
  const int repeats = static_cast<int>(flags.get_int("repeats"));
  const int instance = static_cast<int>(flags.get_int("instance"));

  const System base = make_mul(instance);
  const double uniform =
      1.0 / static_cast<double>(base.omsm.mode_count());

  TextTable table;
  table.set_header({"Psi0", "w/o prob. (mW)", "with prob. (mW)",
                    "reduction (%)"});
  for (double psi0 : {uniform, 0.4, 0.55, 0.7, 0.85, 0.95}) {
    const System system = with_dominant_probability(base, psi0);
    SynthesisOptions options;
    bench::apply_standard_flags(flags, options);
    RunningStats p_base, p_prop;
    for (int r = 0; r < repeats; ++r) {
      options.seed = static_cast<std::uint64_t>(flags.get_int("seed")) +
                     static_cast<std::uint64_t>(r);
      options.consider_probabilities = false;
      p_base.add(synthesize(system, options).evaluation.avg_power_true * 1e3);
      options.consider_probabilities = true;
      p_prop.add(synthesize(system, options).evaluation.avg_power_true * 1e3);
    }
    table.add_row({TextTable::num(psi0, 3), TextTable::num(p_base.mean()),
                   TextTable::num(p_prop.mean()),
                   TextTable::num(100.0 * (p_base.mean() - p_prop.mean()) /
                                      p_base.mean(),
                                  2)});
    std::fprintf(stderr, "done Psi0=%.3f\n", psi0);
  }
  std::printf("Probability-skew sweep on %s (%d modes)\n", base.name.c_str(),
              static_cast<int>(base.omsm.mode_count()));
  table.print(std::cout);
  return 0;
}
