// Suite-calibration helper (not part of the published tables): scans
// generator seeds for one mulN spec and reports the knapsack-seed gap
// (a cheap proxy for the instance's probability-awareness head-room),
// optionally confirming with full GA runs.
#include <cstdio>
#include <cstdlib>

#include "core/cosynth.hpp"
#include "tgff/generator.hpp"

using namespace mmsyn;

int main(int argc, char** argv) {
  if (argc < 7) {
    std::fprintf(stderr,
                 "usage: seed_scan <modes> <tmin> <tmax> <pes> <cls> "
                 "<seed0> [count=8] [--ga]\n"
                 "calibration helper; nothing to do without arguments\n");
    return 0;
  }
  GeneratorConfig cfg;
  cfg.mode_count_min = cfg.mode_count_max = std::atoi(argv[1]);
  cfg.tasks_per_mode_min = std::atoi(argv[2]);
  cfg.tasks_per_mode_max = std::atoi(argv[3]);
  cfg.pe_count_min = cfg.pe_count_max = std::atoi(argv[4]);
  cfg.cl_count_min = cfg.cl_count_max = std::atoi(argv[5]);
  const std::uint64_t seed0 = std::strtoull(argv[6], nullptr, 0);
  const int count = argc > 7 ? std::atoi(argv[7]) : 8;
  const bool run_ga = argc > 8 && std::string(argv[8]) == "--ga";

  for (int i = 0; i < count; ++i) {
    cfg.seed = seed0 + static_cast<std::uint64_t>(i);
    const System system = generate_system(cfg, "scan");

    EvaluationOptions u_opts;
    u_opts.weight_override.assign(system.omsm.mode_count(), 1.0);
    const Evaluator u_eval(system, u_opts);
    const Evaluator t_eval(system, EvaluationOptions{});
    MappingGa u_ga(system, u_eval, {}, {}, {}, 1);
    MappingGa t_ga(system, t_eval, {}, {}, {}, 1);
    const auto decode_power = [&](const Genome& g, MappingGa& ga) {
      const auto map = ga.codec().decode(g);
      const auto cores = build_core_allocation(system, map, {});
      return t_eval.evaluate(map, cores).avg_power_true * 1e3;
    };
    const double u_power = decode_power(u_ga.knapsack_seed_genome(), u_ga);
    const double t_power = decode_power(t_ga.knapsack_seed_genome(), t_ga);
    std::printf("seed 0x%llx: uniform-seed %.3f mW, prob-seed %.3f mW, gap "
                "%.1f %%",
                static_cast<unsigned long long>(cfg.seed), u_power, t_power,
                100.0 * (u_power - t_power) / u_power);
    if (run_ga) {
      SynthesisOptions options;
      options.seed = 3;
      options.consider_probabilities = false;
      const double base =
          synthesize(system, options).evaluation.avg_power_true * 1e3;
      options.consider_probabilities = true;
      const double prop =
          synthesize(system, options).evaluation.avg_power_true * 1e3;
      std::printf(" | GA: base %.3f prop %.3f red %.1f %%", base, prop,
                  100.0 * (base - prop) / base);
    }
    std::printf("\n");
  }
  return 0;
}
