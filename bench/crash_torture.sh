#!/usr/bin/env bash
# Crash-torture harness: run a checkpointed synthesis under a deterministic
# failpoint schedule that injects transient I/O faults, corrupts a
# checkpoint generation on disk, and finally kills the process mid-save —
# then resume (through more injected faults) and require the final audited
# report to be byte-identical to a fault-free run. This extends the
# bit-identical-resume contract of resume_smoke.sh to the faulty world:
# recovery must heal every injected fault without changing the trajectory.
#
# Fault schedule (see common/failpoint.hpp for the spec grammar):
#   io.read=fail@1            transient read fault on the system file
#                             (healed by bounded retry)
#   pool.task=fail@7          transient failure of one pooled work item
#                             (healed by per-item retry; --threads 2)
#   checkpoint.write=corrupt@4  save #4 lands bit-flipped on disk
#   checkpoint.rename=kill@5    save #5 dies between rotation and rename
#
# After the kill: the base checkpoint name is *missing* (rotation already
# shifted it), generation .1 is the corrupted save #4, generation .2 is
# the good save #3. The resume must skip the hole and the corruption and
# fall back to .2 — exercised with one more transient read fault armed.
#
# Usage: crash_torture.sh [path-to-synthesize_file]
set -euo pipefail

BIN=${1:-build/examples/synthesize_file}
if [ ! -x "$BIN" ]; then
  echo "crash_torture: synthesize_file binary not found at '$BIN'" >&2
  exit 1
fi

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

FLAGS=(--seed 7 --population 48 --generations 60 --threads 2
       --audit --gantt=false --report-timing=false)
KILL_SPEC='io.read=fail@1;pool.task=fail@7;checkpoint.write=corrupt@4;checkpoint.rename=kill@5'
RESUME_SPEC='io.read=fail@1'

"$BIN" --export-mul 9 --output "$WORK/sys.mmsyn" > /dev/null

# Fault-free reference run.
"$BIN" --input "$WORK/sys.mmsyn" "${FLAGS[@]}" > "$WORK/reference.txt"

# Tortured run: must die with the injected-kill exit code (137) at save #5.
set +e
"$BIN" --input "$WORK/sys.mmsyn" "${FLAGS[@]}" \
  --checkpoint "$WORK/run.ckpt" --checkpoint-every 1 --checkpoint-keep 3 \
  --failpoints "$KILL_SPEC" > /dev/null 2> "$WORK/tortured.err"
STATUS=$?
set -e
if [ "$STATUS" -ne 137 ]; then
  echo "crash_torture: FAIL — tortured run exited $STATUS, expected the" \
       "injected kill (137)" >&2
  cat "$WORK/tortured.err" >&2
  exit 1
fi

# The kill between rotation and rename leaves the base name missing, the
# corrupted save #4 as generation .1, and the good save #3 as .2.
if [ -e "$WORK/run.ckpt" ]; then
  echo "crash_torture: FAIL — base checkpoint exists; kill@5 never fired" >&2
  exit 1
fi
for gen in "$WORK/run.ckpt.1" "$WORK/run.ckpt.2"; do
  if [ ! -s "$gen" ]; then
    echo "crash_torture: FAIL — expected generation file $gen is missing" >&2
    exit 1
  fi
done

# Resume through the generation fallback, with a transient read fault
# armed on top; the run must finish cleanly (audit included, exit 0).
"$BIN" --input "$WORK/sys.mmsyn" "${FLAGS[@]}" \
  --resume "$WORK/run.ckpt" --checkpoint-keep 3 \
  --failpoints "$RESUME_SPEC" \
  > "$WORK/recovered.txt" 2> "$WORK/recovered.err"

# The recovery log must show the fallback actually happened: the missing
# newest generation and the corrupted .1 skipped, .2 loaded.
if ! grep -q 'skipped checkpoint generation.*cannot open' "$WORK/recovered.err"; then
  echo "crash_torture: FAIL — no skip note for the missing generation" >&2
  cat "$WORK/recovered.err" >&2
  exit 1
fi
if ! grep -q 'skipped checkpoint generation.*CRC mismatch' "$WORK/recovered.err"; then
  echo "crash_torture: FAIL — no skip note for the corrupted generation" >&2
  cat "$WORK/recovered.err" >&2
  exit 1
fi
if ! grep -q 'resumed from older generation .*run\.ckpt\.2' "$WORK/recovered.err"; then
  echo "crash_torture: FAIL — resume did not fall back to generation .2" >&2
  cat "$WORK/recovered.err" >&2
  exit 1
fi

if diff -u "$WORK/reference.txt" "$WORK/recovered.txt"; then
  echo "crash_torture: PASS — recovered report is byte-identical to the" \
       "fault-free run"
else
  echo "crash_torture: FAIL — recovered report differs from the fault-free" \
       "run" >&2
  exit 1
fi
