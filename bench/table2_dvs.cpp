// Regenerates Table 2: "Experimental Results with DVS".
//
// Identical protocol to Table 1, but the inner loop applies PV-DVS voltage
// scaling — on DVS-enabled software processors and, via the Fig. 5
// serialization transformation, on parallel hardware cores. Expected
// shape: absolute powers drop well below the Table 1 values for *both*
// approaches (DVS alone is powerful), and considering the execution
// probabilities still wins on top of it (paper: 5.7%–64.0%).
#include <iostream>

#include "bench/harness.hpp"
#include "tgff/suites.hpp"

int main(int argc, char** argv) {
  using namespace mmsyn;
  Flags flags = bench::make_standard_flags(/*default_repeats=*/5);
  if (!flags.parse(argc, argv)) return 1;

  SynthesisOptions options;
  options.use_dvs = true;
  bench::apply_standard_flags(flags, options);

  std::vector<bench::ComparisonRow> rows;
  for (int i = 1; i <= mul_count(); ++i) {
    const System system = make_mul(i);
    rows.push_back(bench::compare_approaches(
        system, options, static_cast<int>(flags.get_int("repeats")),
        static_cast<std::uint64_t>(flags.get_int("seed")),
        system.name + " (" + std::to_string(mul_mode_count(i)) + ")"));
    std::cerr << "done " << system.name << "\n";
  }
  bench::print_comparison_table(rows,
                                "Table 2: Experimental Results with DVS");
  return 0;
}
