// Shared experiment harness for the table benches: runs the proposed
// (probability-aware) synthesis against the probability-neglecting
// baseline over repeated seeds and aggregates the paper's table columns.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/cosynth.hpp"
#include "model/system.hpp"

namespace mmsyn::bench {

/// One Table-1/2/3 row: averaged powers, CPU times and the reduction.
struct ComparisonRow {
  std::string label;
  double baseline_power_mw = 0.0;
  double baseline_cpu_s = 0.0;
  double proposed_power_mw = 0.0;
  double proposed_cpu_s = 0.0;
  double reduction_pct = 0.0;
  int baseline_feasible = 0;  // feasible runs out of `repeats`
  int proposed_feasible = 0;
  int repeats = 0;
};

/// Runs both approaches `repeats` times (seeds base_seed+i) and averages —
/// the paper's "run 40 times and average" protocol at configurable scale.
inline ComparisonRow compare_approaches(const System& system,
                                        SynthesisOptions options,
                                        int repeats,
                                        std::uint64_t base_seed,
                                        std::string label) {
  ComparisonRow row;
  row.label = std::move(label);
  row.repeats = repeats;
  RunningStats p_base, t_base, p_prop, t_prop;
  for (int r = 0; r < repeats; ++r) {
    options.seed = base_seed + static_cast<std::uint64_t>(r);

    options.consider_probabilities = false;
    const SynthesisResult baseline = synthesize(system, options);
    p_base.add(baseline.evaluation.avg_power_true * 1e3);
    t_base.add(baseline.elapsed_seconds);
    row.baseline_feasible += baseline.evaluation.feasible() ? 1 : 0;

    options.consider_probabilities = true;
    const SynthesisResult proposed = synthesize(system, options);
    p_prop.add(proposed.evaluation.avg_power_true * 1e3);
    t_prop.add(proposed.elapsed_seconds);
    row.proposed_feasible += proposed.evaluation.feasible() ? 1 : 0;
  }
  row.baseline_power_mw = p_base.mean();
  row.baseline_cpu_s = t_base.mean();
  row.proposed_power_mw = p_prop.mean();
  row.proposed_cpu_s = t_prop.mean();
  row.reduction_pct = 100.0 * (row.baseline_power_mw - row.proposed_power_mw) /
                      row.baseline_power_mw;
  return row;
}

/// Prints rows in the layout of the paper's Tables 1–3.
inline void print_comparison_table(const std::vector<ComparisonRow>& rows,
                                   const std::string& title) {
  TextTable table;
  table.set_header({"Example", "w/o prob. P(mW)", "CPU(s)",
                    "with prob. P(mW)", "CPU(s)", "Reduc.(%)", "feas."});
  double total_reduction = 0.0;
  for (const ComparisonRow& r : rows) {
    table.add_row({r.label, TextTable::num(r.baseline_power_mw),
                   TextTable::num(r.baseline_cpu_s, 1),
                   TextTable::num(r.proposed_power_mw),
                   TextTable::num(r.proposed_cpu_s, 1),
                   TextTable::num(r.reduction_pct, 2),
                   std::to_string(r.proposed_feasible) + "/" +
                       std::to_string(r.repeats)});
    total_reduction += r.reduction_pct;
  }
  table.print(std::cout, title);
  if (!rows.empty())
    std::printf("average reduction: %.2f %%\n",
                total_reduction / static_cast<double>(rows.size()));
}

/// Standard flags shared by the table benches.
inline Flags make_standard_flags(int default_repeats) {
  Flags flags;
  flags.define_int("repeats", default_repeats,
                   "synthesis repetitions per approach (paper: 40)");
  flags.define_int("population", 64, "GA population size");
  flags.define_int("generations", 600, "GA generation cap");
  flags.define_int("stagnation", 70, "GA convergence stagnation limit");
  flags.define_int("seed", 1, "base seed");
  flags.define_int("threads", 1,
                   "fitness-evaluation threads (0 = all cores); results are "
                   "bit-identical for any value");
  return flags;
}

/// Applies the standard flags onto SynthesisOptions.
inline void apply_standard_flags(const Flags& flags,
                                 SynthesisOptions& options) {
  options.ga.population_size = static_cast<int>(flags.get_int("population"));
  options.ga.max_generations = static_cast<int>(flags.get_int("generations"));
  options.ga.stagnation_limit = static_cast<int>(flags.get_int("stagnation"));
  options.ga.num_threads = static_cast<int>(flags.get_int("threads"));
}

}  // namespace mmsyn::bench
