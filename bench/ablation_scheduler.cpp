// Inner-loop scheduler ablation: the paper's inner loop uses critical-path
// (bottom-level) list scheduling [12]. This bench swaps the task-selection
// priority for two strawmen — FIFO (task-id order) and longest-task-first
// — and re-runs the proposed synthesis.
//
// Measured finding (a negative result worth recording): on the calibrated
// suite the three policies land within noise of each other. The suite's
// periods carry slack (every instance is software-feasible by
// construction), so the priority rule changes makespans but rarely which
// mappings are *feasible* — and the objective is energy, not latency. The
// policy would matter on deadline-critical instances; reproduce that by
// shrinking `period_factor_*` in the generator config.
#include <cstdio>
#include <iostream>

#include "bench/harness.hpp"
#include "common/stats.hpp"
#include "tgff/suites.hpp"

using namespace mmsyn;

namespace {

struct Outcome {
  double power_mw = 0.0;
  int feasible = 0;
};

Outcome run_policy(const System& system, SchedulingPolicy policy,
                   int repeats, const Flags& flags) {
  SynthesisOptions options;
  options.scheduling_policy = policy;
  bench::apply_standard_flags(flags, options);
  Outcome outcome;
  RunningStats stats;
  for (int r = 0; r < repeats; ++r) {
    options.seed = static_cast<std::uint64_t>(flags.get_int("seed")) +
                   static_cast<std::uint64_t>(r);
    const SynthesisResult result = synthesize(system, options);
    stats.add(result.evaluation.avg_power_true * 1e3);
    outcome.feasible += result.evaluation.feasible() ? 1 : 0;
  }
  outcome.power_mw = stats.mean();
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = bench::make_standard_flags(/*default_repeats=*/3);
  if (!flags.parse(argc, argv)) return 1;
  const int repeats = static_cast<int>(flags.get_int("repeats"));

  TextTable table;
  table.set_header({"Example", "bottom-level", "fifo", "longest-first",
                    "(mW; feasible runs)"});
  for (const int idx : {4, 6, 8, 9}) {
    const System system = make_mul(idx);
    const Outcome bl =
        run_policy(system, SchedulingPolicy::kBottomLevel, repeats, flags);
    const Outcome fifo =
        run_policy(system, SchedulingPolicy::kTopoOrder, repeats, flags);
    const Outcome lpt =
        run_policy(system, SchedulingPolicy::kLongestTask, repeats, flags);
    auto cell = [&](const Outcome& o) {
      return TextTable::num(o.power_mw) + " (" + std::to_string(o.feasible) +
             "/" + std::to_string(repeats) + ")";
    };
    table.add_row({system.name, cell(bl), cell(fifo), cell(lpt), ""});
    std::fprintf(stderr, "done %s\n", system.name.c_str());
  }
  table.print(std::cout,
              "Scheduler-policy ablation (proposed synthesis, average power)");
  return 0;
}
