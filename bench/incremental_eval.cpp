// Incremental-evaluation benchmark: wall-clock speedup and hit rate of
// the per-mode evaluation cache (GaOptions::memoize_mode_evaluations) on
// the mul suite, with an in-bench bitwise-identity check — the cached and
// the cache-disabled run must produce byte-identical reports, or the
// bench exits nonzero.
//
//   incremental_eval [--muls 4,8,12] [--population 64] [--generations 80]
//                    [--seed 1] [--threads 1] [--dvs] [--min-speedup 0]
//                    [--scheduler bottom-level] [--profile] [--json PATH]
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/cosynth.hpp"
#include "core/report.hpp"
#include "pipeline/backends.hpp"
#include "pipeline/profile.hpp"
#include "tgff/suites.hpp"

using namespace mmsyn;

namespace {

std::vector<int> parse_muls(const std::string& csv) {
  std::vector<int> muls;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) muls.push_back(std::stoi(item));
  return muls;
}

std::vector<std::string> choice_names(std::vector<SchedulerBackendInfo> v) {
  std::vector<std::string> names;
  for (const auto& b : v) names.emplace_back(b.name);
  return names;
}

std::vector<std::string> choice_names(std::vector<DvsBackendInfo> v) {
  std::vector<std::string> names;
  for (const auto& b : v) names.emplace_back(b.name);
  return names;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define_string("muls", "4,8,12", "comma-separated mul suite sizes");
  flags.define_int("population", 64, "GA population size");
  flags.define_int("generations", 80, "GA generations (fixed, no early stop)");
  flags.define_int("seed", 1, "GA seed");
  flags.define_int("threads", 1, "fitness-evaluation threads");
  flags.define_choice("dvs", choice_names(dvs_backends()),
                      /*default_value=*/dvs_backend_name(false),
                      /*implicit_value=*/dvs_backend_name(true),
                      "voltage-scaling backend (bare --dvs = " +
                          std::string(dvs_backend_name(true)) + ")");
  flags.define_choice("scheduler", choice_names(scheduler_backends()),
                      /*default_value=*/scheduler_backends().front().name,
                      /*implicit_value=*/scheduler_backends().front().name,
                      "list-scheduler priority backend");
  flags.define_bool("profile", false,
                    "print per-stage pipeline timings for the cached runs");
  flags.define_double("min-speedup", 0.0,
                      "fail unless at least one instance reaches this "
                      "cached/cold speedup (0 disables)");
  flags.define_string("json", "",
                      "write machine-readable results to this file");
  if (!flags.parse(argc, argv)) return 1;

  SynthesisOptions base;
  PipelineProfiler profiler;
  try {
    base.use_dvs = resolve_dvs_backend(flags.get_string("dvs"));
    base.scheduling_policy =
        resolve_scheduler_backend(flags.get_string("scheduler"));
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  base.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  base.ga.population_size = static_cast<int>(flags.get_int("population"));
  base.ga.max_generations = static_cast<int>(flags.get_int("generations"));
  // Fixed workload so cold and cached runs time the same search.
  base.ga.stagnation_limit = base.ga.max_generations + 1;
  base.ga.num_threads = static_cast<int>(flags.get_int("threads"));

  ReportOptions report;
  report.include_timing = false;

  TextTable table;
  table.set_header({"instance", "cold(s)", "cached(s)", "speedup",
                    "hit rate", "stage rate", "identical"});
  bool all_identical = true;
  double best_speedup = 0.0;
  long total_eval_hits = 0, total_eval_lookups = 0;
  long total_sched_hits = 0, total_sched_lookups = 0;
  struct InstanceRow {
    int mul;
    double cold_s, cached_s, speedup, hit_rate, stage_rate;
    bool identical;
  };
  std::vector<InstanceRow> rows;
  for (const int mul : parse_muls(flags.get_string("muls"))) {
    const System system = make_mul(mul);

    SynthesisOptions options = base;
    options.ga.memoize_mode_evaluations = false;
    const SynthesisResult cold = synthesize(system, options);
    options.ga.memoize_mode_evaluations = true;
    // Only the cached runs are profiled: the cold leg would double every
    // stage count without adding information (profiling never changes
    // results, so attaching it here cannot break the identity check).
    if (flags.get_bool("profile")) options.profiler = &profiler;
    const SynthesisResult cached = synthesize(system, options);
    options.profiler = nullptr;

    // Bitwise identity: the cache may only change the wall clock. The
    // rendered report covers the mapping, allocation, powers and fitness.
    const bool identical =
        implementation_report(system, cold, report) ==
            implementation_report(system, cached, report) &&
        cold.fitness == cached.fitness &&
        cold.evaluations == cached.evaluations &&
        cold.evaluation.avg_power_true == cached.evaluation.avg_power_true;
    all_identical = all_identical && identical;

    const double speedup = cached.elapsed_seconds > 0.0
                               ? cold.elapsed_seconds / cached.elapsed_seconds
                               : 0.0;
    best_speedup = std::max(best_speedup, speedup);
    const double hit_rate =
        cached.mode_cache_lookups > 0
            ? static_cast<double>(cached.mode_cache_hits) /
                  static_cast<double>(cached.mode_cache_lookups)
            : 0.0;
    // Stage-level reuse: mode evaluations that skipped at least the
    // scheduling stages (whole-mode hits reuse everything; schedule-store
    // hits reuse stages 1-2 and re-run DVS). Never below the whole-mode
    // hit rate, since schedule hits only add on top of it.
    const double stage_rate =
        cached.mode_cache_lookups > 0
            ? static_cast<double>(cached.mode_cache_hits +
                                  cached.schedule_cache_hits) /
                  static_cast<double>(cached.mode_cache_lookups)
            : 0.0;
    total_eval_hits += cached.mode_cache_hits;
    total_eval_lookups += cached.mode_cache_lookups;
    total_sched_hits += cached.schedule_cache_hits;
    total_sched_lookups += cached.schedule_cache_lookups;
    rows.push_back({mul, cold.elapsed_seconds, cached.elapsed_seconds,
                    speedup, hit_rate, stage_rate, identical});
    table.add_row({"mul" + std::to_string(mul),
                   TextTable::num(cold.elapsed_seconds, 2),
                   TextTable::num(cached.elapsed_seconds, 2),
                   TextTable::num(speedup, 2),
                   TextTable::num(100.0 * hit_rate, 1) + "%",
                   TextTable::num(100.0 * stage_rate, 1) + "%",
                   identical ? "yes" : "NO"});
  }
  table.print(std::cout,
              "per-mode incremental evaluation (cold vs cached GA run)");
  if (flags.get_bool("profile"))
    std::cout << profiler.table(total_eval_hits, total_eval_lookups,
                                total_sched_hits, total_sched_lookups);

  if (!flags.get_string("json").empty()) {
    std::ofstream out(flags.get_string("json"));
    out << "{\n"
        << "  \"bench\": \"incremental_eval\",\n"
        << "  \"population\": " << flags.get_int("population") << ",\n"
        << "  \"generations\": " << flags.get_int("generations") << ",\n"
        << "  \"instances\": {\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const InstanceRow& r = rows[i];
      out << "    \"mul" << r.mul << "\": {\"cold_s\": " << r.cold_s
          << ", \"cached_s\": " << r.cached_s
          << ", \"speedup\": " << r.speedup
          << ", \"hit_rate\": " << r.hit_rate
          << ", \"stage_rate\": " << r.stage_rate << ", \"identical\": "
          << (r.identical ? "true" : "false") << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  },\n"
        << "  \"best_speedup\": " << best_speedup << ",\n"
        << "  \"identical\": " << (all_identical ? "true" : "false") << "\n"
        << "}\n";
  }

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: cached run differs from the cache-disabled run\n");
    return 1;
  }
  const double min_speedup = flags.get_double("min-speedup");
  if (min_speedup > 0.0 && best_speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: best speedup %.2fx below required %.2fx\n",
                 best_speedup, min_speedup);
    return 1;
  }
  std::printf("best speedup: %.2fx; results identical: yes\n", best_speedup);
  return 0;
}
