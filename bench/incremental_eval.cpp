// Incremental-evaluation benchmark: wall-clock speedup and hit rate of
// the per-mode evaluation cache (GaOptions::memoize_mode_evaluations) on
// the mul suite, with an in-bench bitwise-identity check — the cached and
// the cache-disabled run must produce byte-identical reports, or the
// bench exits nonzero.
//
//   incremental_eval [--muls 4,8,12] [--population 64] [--generations 80]
//                    [--seed 1] [--threads 1] [--dvs] [--min-speedup 0]
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/cosynth.hpp"
#include "core/report.hpp"
#include "tgff/suites.hpp"

using namespace mmsyn;

namespace {

std::vector<int> parse_muls(const std::string& csv) {
  std::vector<int> muls;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) muls.push_back(std::stoi(item));
  return muls;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define_string("muls", "4,8,12", "comma-separated mul suite sizes");
  flags.define_int("population", 64, "GA population size");
  flags.define_int("generations", 80, "GA generations (fixed, no early stop)");
  flags.define_int("seed", 1, "GA seed");
  flags.define_int("threads", 1, "fitness-evaluation threads");
  flags.define_bool("dvs", false, "apply PV-DVS inside the loop");
  flags.define_double("min-speedup", 0.0,
                      "fail unless at least one instance reaches this "
                      "cached/cold speedup (0 disables)");
  if (!flags.parse(argc, argv)) return 1;

  SynthesisOptions base;
  base.use_dvs = flags.get_bool("dvs");
  base.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  base.ga.population_size = static_cast<int>(flags.get_int("population"));
  base.ga.max_generations = static_cast<int>(flags.get_int("generations"));
  // Fixed workload so cold and cached runs time the same search.
  base.ga.stagnation_limit = base.ga.max_generations + 1;
  base.ga.num_threads = static_cast<int>(flags.get_int("threads"));

  ReportOptions report;
  report.include_timing = false;

  TextTable table;
  table.set_header({"instance", "cold(s)", "cached(s)", "speedup",
                    "hit rate", "identical"});
  bool all_identical = true;
  double best_speedup = 0.0;
  for (const int mul : parse_muls(flags.get_string("muls"))) {
    const System system = make_mul(mul);

    SynthesisOptions options = base;
    options.ga.memoize_mode_evaluations = false;
    const SynthesisResult cold = synthesize(system, options);
    options.ga.memoize_mode_evaluations = true;
    const SynthesisResult cached = synthesize(system, options);

    // Bitwise identity: the cache may only change the wall clock. The
    // rendered report covers the mapping, allocation, powers and fitness.
    const bool identical =
        implementation_report(system, cold, report) ==
            implementation_report(system, cached, report) &&
        cold.fitness == cached.fitness &&
        cold.evaluations == cached.evaluations &&
        cold.evaluation.avg_power_true == cached.evaluation.avg_power_true;
    all_identical = all_identical && identical;

    const double speedup = cached.elapsed_seconds > 0.0
                               ? cold.elapsed_seconds / cached.elapsed_seconds
                               : 0.0;
    best_speedup = std::max(best_speedup, speedup);
    const double hit_rate =
        cached.mode_cache_lookups > 0
            ? static_cast<double>(cached.mode_cache_hits) /
                  static_cast<double>(cached.mode_cache_lookups)
            : 0.0;
    table.add_row({"mul" + std::to_string(mul),
                   TextTable::num(cold.elapsed_seconds, 2),
                   TextTable::num(cached.elapsed_seconds, 2),
                   TextTable::num(speedup, 2),
                   TextTable::num(100.0 * hit_rate, 1) + "%",
                   identical ? "yes" : "NO"});
  }
  table.print(std::cout,
              "per-mode incremental evaluation (cold vs cached GA run)");

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: cached run differs from the cache-disabled run\n");
    return 1;
  }
  const double min_speedup = flags.get_double("min-speedup");
  if (min_speedup > 0.0 && best_speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: best speedup %.2fx below required %.2fx\n",
                 best_speedup, min_speedup);
    return 1;
  }
  std::printf("best speedup: %.2fx; results identical: yes\n", best_speedup);
  return 0;
}
