#!/usr/bin/env bash
# Island-model crash torture: a multi-island checkpointed run is killed
# mid-save at a migration barrier (after an earlier barrier save was
# corrupted on disk), then resumed through the generation fallback — the
# final audited report must be byte-identical to a fault-free island run.
# This is the island-container extension of crash_torture.sh: it proves
# that kill-and-resume across a migration barrier replays the migrated
# individuals bit-identically.
#
# Fault schedule (island checkpoints are written once per barrier):
#   checkpoint.write=corrupt@2   barrier save #2 lands bit-flipped
#   checkpoint.rename=kill@3     barrier save #3 dies between rotation
#                                and rename
#
# After the kill: the base checkpoint name is missing (rotation already
# shifted it), generation .1 is the corrupted save #2, generation .2 is
# the good save #1 — the resume must fall back two generations and still
# converge to the fault-free result.
#
# Usage: island_torture.sh [path-to-synthesize_file]
set -euo pipefail

BIN=${1:-build/examples/synthesize_file}
if [ ! -x "$BIN" ]; then
  echo "island_torture: synthesize_file binary not found at '$BIN'" >&2
  exit 1
fi

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

FLAGS=(--seed 7 --population 48 --generations 60 --threads 2
       --islands 3 --migration-interval 5 --migrants 2
       --audit --gantt=false --report-timing=false)
KILL_SPEC='checkpoint.write=corrupt@2;checkpoint.rename=kill@3'

"$BIN" --export-mul 9 --output "$WORK/sys.mmsyn" > /dev/null

# Fault-free reference run.
"$BIN" --input "$WORK/sys.mmsyn" "${FLAGS[@]}" > "$WORK/reference.txt"

# Tortured run: must die with the injected-kill exit code (137) at the
# third barrier save.
set +e
"$BIN" --input "$WORK/sys.mmsyn" "${FLAGS[@]}" \
  --checkpoint "$WORK/run.ckpt" --checkpoint-keep 3 \
  --failpoints "$KILL_SPEC" > /dev/null 2> "$WORK/tortured.err"
STATUS=$?
set -e
if [ "$STATUS" -ne 137 ]; then
  echo "island_torture: FAIL — tortured run exited $STATUS, expected the" \
       "injected kill (137)" >&2
  cat "$WORK/tortured.err" >&2
  exit 1
fi

if [ -e "$WORK/run.ckpt" ]; then
  echo "island_torture: FAIL — base checkpoint exists; kill@3 never fired" >&2
  exit 1
fi
for gen in "$WORK/run.ckpt.1" "$WORK/run.ckpt.2"; do
  if [ ! -s "$gen" ]; then
    echo "island_torture: FAIL — expected generation file $gen is missing" >&2
    exit 1
  fi
done

# Resume through the fallback: the missing newest and the corrupted .1
# must be skipped, .2 (the first barrier) loaded, and the remaining
# barriers replayed to the fault-free result.
"$BIN" --input "$WORK/sys.mmsyn" "${FLAGS[@]}" \
  --resume "$WORK/run.ckpt" --checkpoint-keep 3 \
  > "$WORK/recovered.txt" 2> "$WORK/recovered.err"

if ! grep -q 'skipped checkpoint generation.*cannot open' "$WORK/recovered.err"; then
  echo "island_torture: FAIL — no skip note for the missing generation" >&2
  cat "$WORK/recovered.err" >&2
  exit 1
fi
if ! grep -q 'skipped checkpoint generation.*CRC mismatch' "$WORK/recovered.err"; then
  echo "island_torture: FAIL — no skip note for the corrupted generation" >&2
  cat "$WORK/recovered.err" >&2
  exit 1
fi
if ! grep -q 'resumed from older generation .*run\.ckpt\.2' "$WORK/recovered.err"; then
  echo "island_torture: FAIL — resume did not fall back to generation .2" >&2
  cat "$WORK/recovered.err" >&2
  exit 1
fi

if diff -u "$WORK/reference.txt" "$WORK/recovered.txt"; then
  echo "island_torture: PASS — recovered island report is byte-identical" \
       "to the fault-free run"
else
  echo "island_torture: FAIL — recovered report differs from the" \
       "fault-free run" >&2
  exit 1
fi
