// Regenerates the paper's Fig. 2 motivational example (Example 1) with the
// published numbers — this is exact arithmetic, not a stochastic run:
//
//   Fig. 2b (probabilities neglected): τ3(C), τ5(E) in hardware
//       0.1·(10 + 14 + 0.023) + 0.9·(13 + 0.015 + 14) = 26.7158 mW·s
//   Fig. 2c (probabilities considered): τ5(E), τ6(F) in hardware
//       0.1·(10 + 14 + 16) + 0.9·(13 + 0.015 + 0.032) = 15.7423 mW·s
//   reduction: 41%
//
// The bench verifies both fixed mappings through the full evaluator and
// shows that exhaustive search over all 64 mappings reproduces each one as
// the optimum of its respective objective.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "core/allocation_builder.hpp"
#include "core/cosynth.hpp"
#include "tgff/motivational.hpp"

using namespace mmsyn;

namespace {

double true_power_mw(const System& system, const MultiModeMapping& mapping) {
  const Evaluator evaluator(system, EvaluationOptions{});
  const CoreAllocation cores = build_core_allocation(system, mapping);
  return evaluator.evaluate(mapping, cores).avg_power_true * 1e3;
}

}  // namespace

int main() {
  const System system = make_motivational_example1();

  const MultiModeMapping fig2b = example1_mapping_without_probabilities();
  const MultiModeMapping fig2c = example1_mapping_with_probabilities();
  const double power_b = true_power_mw(system, fig2b);
  const double power_c = true_power_mw(system, fig2c);

  TextTable table;
  table.set_header({"Mapping", "paper (mWs)", "measured (mW)", "HW tasks"});
  table.add_row({"Fig. 2b (w/o probabilities)", "26.7158",
                 TextTable::num(power_b, 4), "tau3(C), tau5(E)"});
  table.add_row({"Fig. 2c (with probabilities)", "15.7423",
                 TextTable::num(power_c, 4), "tau5(E), tau6(F)"});
  table.print(std::cout, "Fig. 2: Example 1 — Mode Execution Probabilities");
  std::printf("reduction: %.2f %% (paper: 41 %%)\n\n",
              100.0 * (power_b - power_c) / power_b);

  // Exhaustive search over all 2^6 mappings under both objectives.
  SynthesisOptions options;
  options.consider_probabilities = false;
  const SynthesisResult opt_b = exhaustive_search(system, options);
  options.consider_probabilities = true;
  const SynthesisResult opt_c = exhaustive_search(system, options);
  std::printf("exhaustive optimum w/o probabilities:  %.4f mW (expect %.4f)\n",
              opt_b.evaluation.avg_power_true * 1e3, power_b);
  std::printf("exhaustive optimum with probabilities: %.4f mW (expect %.4f)\n",
              opt_c.evaluation.avg_power_true * 1e3, power_c);

  const bool ok = std::abs(power_b - 26.7158) < 1e-3 &&
                  std::abs(power_c - 15.7423) < 1e-3 &&
                  std::abs(opt_b.evaluation.avg_power_true * 1e3 - power_b) <
                      1e-9 &&
                  std::abs(opt_c.evaluation.avg_power_true * 1e3 - power_c) <
                      1e-9;
  std::printf("%s\n", ok ? "MATCH: paper numbers reproduced exactly"
                         : "MISMATCH: see numbers above");
  return ok ? 0 : 1;
}
