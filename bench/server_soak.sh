#!/usr/bin/env bash
# Server soak harness: drive mmsyn_serve through the full fault-tolerance
# contract end-to-end, over the real unix-socket wire protocol.
#
#   Leg A  24 concurrent jobs (4 models x 3 seeds x 2 waves) through 4
#          workers; every stored report must be byte-identical to the
#          synthesize_file CLI with the same options, and a repeat
#          submission must be served from the cross-job result cache.
#          A parseable-but-invalid (poison) model must be quarantined
#          with the typed client exit code, without touching neighbours.
#          A budget-limited job must come back as the typed
#          budget-exhausted outcome (client exit 3).
#   Leg B  kill -9 mid-soak with jobs queued/running, restart on the same
#          state dir: zero lost jobs — every acknowledged id is fetchable
#          and byte-identical to the CLI reference (resumed through the
#          checkpoint machinery, not recomputed blindly).
#   Leg C  SIGTERM graceful drain with jobs in flight: exit 0, journaled
#          remainder, and a restarted server completes them to the same
#          bytes.
#   Leg D  admission control: a queue-limit 2 admission-only server
#          rejects the third concurrent submit with the typed queue-full
#          client exit code (6).
#   Leg E  the pinned CLI contract rides along: synthesize_file under
#          --time-budget still exits 3 on a partial result.
#
# Usage: server_soak.sh [mmsyn_serve] [mmsyn_client] [synthesize_file]
set -euo pipefail

SERVE=${1:-build/examples/mmsyn_serve}
CLIENT=${2:-build/examples/mmsyn_client}
SF=${3:-build/examples/synthesize_file}
for bin in "$SERVE" "$CLIENT" "$SF"; do
  if [ ! -x "$bin" ]; then
    echo "server_soak: binary not found at '$bin'" >&2
    exit 1
  fi
done

WORK=$(mktemp -d)
SOCK="$WORK/serve.sock"
STATE="$WORK/state"
mkdir -p "$STATE"
SERVER_PID=
cleanup() {
  if [ -n "$SERVER_PID" ]; then kill -9 "$SERVER_PID" 2> /dev/null || true; fi
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "server_soak: FAIL — $*" >&2
  exit 1
}

start_server() {
  "$SERVE" --socket "$SOCK" --state-dir "$STATE" "$@" \
    2>> "$WORK/serve.log" &
  SERVER_PID=$!
}

MODELS="5 6 7 8"
SEEDS="3 5 9"
POP=32
GEN=40
# Long-job shape for the kill/drain legs: the generation cap is far away,
# so the run length is set by deterministic stagnation convergence — long
# enough to be interrupted mid-flight, still a pure function of the seed.
LONG_POP=24
LONG_GEN=2000

echo "== CLI references =="
for m in $MODELS; do
  "$SF" --export-mul "$m" --output "$WORK/mul$m.mmsyn" > /dev/null
done
for m in $MODELS; do
  for s in $SEEDS; do
    "$SF" --input "$WORK/mul$m.mmsyn" --seed "$s" \
      --population $POP --generations $GEN \
      --quiet --report-timing=false > "$WORK/ref-$m-$s.txt"
  done
done
for spec in "7 21" "8 22" "7 23" "8 24" "7 25" "8 26" "7 31" "8 32"; do
  set -- $spec
  "$SF" --input "$WORK/mul$1.mmsyn" --seed "$2" \
    --population $LONG_POP --generations $LONG_GEN \
    --quiet --report-timing=false > "$WORK/ref-long-$1-$2.txt"
done

echo "== leg A: 24-job concurrent soak =="
start_server --workers 4 --checkpoint-every 5
ids=()
keys=()
for wave in 1 2; do
  for m in $MODELS; do
    for s in $SEEDS; do
      ack=$("$CLIENT" --socket "$SOCK" --input "$WORK/mul$m.mmsyn" \
        --seed "$s" --population $POP --generations $GEN --async)
      ids+=("${ack%% *}")
      keys+=("$m-$s")
    done
  done
done
[ "${#ids[@]}" -eq 24 ] || fail "expected 24 acknowledged jobs, got ${#ids[@]}"

lost=0
for i in "${!ids[@]}"; do
  set +e
  "$CLIENT" --socket "$SOCK" --job "${ids[$i]}" > "$WORK/got-a-$i.txt"
  status=$?
  set -e
  if [ "$status" -ne 0 ] && [ "$status" -ne 2 ]; then
    echo "server_soak: job ${ids[$i]} exited $status" >&2
    lost=$((lost + 1))
    continue
  fi
  cmp -s "$WORK/got-a-$i.txt" "$WORK/ref-${keys[$i]}.txt" \
    || fail "job ${ids[$i]} report differs from CLI reference ${keys[$i]}"
done
[ "$lost" -eq 0 ] || fail "$lost of 24 soak jobs lost"
echo "leg A: 24/24 jobs byte-identical to the CLI"

# With every wave-A result completed, an identical submission must be a
# cache hit — still byte-identical.
"$CLIENT" --socket "$SOCK" --input "$WORK/mul5.mmsyn" --seed 3 \
  --population $POP --generations $GEN > "$WORK/got-cached.txt" || true
cmp -s "$WORK/got-cached.txt" "$WORK/ref-5-3.txt" \
  || fail "cached repeat submission differs from the CLI reference"
"$CLIENT" --socket "$SOCK" --stats > "$WORK/stats-a.txt"
grep -Eq 'cache hits/lookups +[1-9]' "$WORK/stats-a.txt" \
  || fail "no cache hits recorded after a repeat submission"

echo "== leg A: poison quarantine =="
grep -v '^impl ' "$WORK/mul5.mmsyn" > "$WORK/poison.mmsyn"
set +e
"$CLIENT" --socket "$SOCK" --input "$WORK/poison.mmsyn" --seed 3 \
  --population $POP --generations $GEN \
  > /dev/null 2> "$WORK/poison.err"
status=$?
set -e
[ "$status" -eq 5 ] || fail "poison job exited $status, expected 5"
grep -q "quarantined" "$WORK/poison.err" \
  || fail "poison job stderr lacks the quarantine note"
# Neighbours are untouched by the quarantine.
set +e
"$CLIENT" --socket "$SOCK" --job "${ids[0]}" > "$WORK/got-requery.txt"
set -e
cmp -s "$WORK/got-requery.txt" "$WORK/ref-${keys[0]}.txt" \
  || fail "healthy job changed after a neighbour was quarantined"

echo "== leg A: typed budget exhaustion over the wire =="
set +e
"$CLIENT" --socket "$SOCK" --input "$WORK/mul8.mmsyn" --seed 77 \
  --population $LONG_POP --generations 1000000 --time-budget 0.05 \
  > "$WORK/budget.txt" 2> /dev/null
status=$?
set -e
[ "$status" -eq 3 ] || fail "budget-limited job exited $status, expected 3"
[ -s "$WORK/budget.txt" ] || fail "budget-limited job printed no partial report"

echo "== leg B: kill -9 mid-soak, restart, zero lost jobs =="
bids=()
bkeys=()
for spec in "7 21" "8 22" "7 23" "8 24" "7 25" "8 26"; do
  set -- $spec
  ack=$("$CLIENT" --socket "$SOCK" --input "$WORK/mul$1.mmsyn" \
    --seed "$2" --population $LONG_POP --generations $LONG_GEN --async)
  bids+=("${ack%% *}")
  bkeys+=("$1-$2")
done
sleep 0.7
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2> /dev/null || true
SERVER_PID=
start_server --workers 4 --checkpoint-every 5
for i in "${!bids[@]}"; do
  set +e
  "$CLIENT" --socket "$SOCK" --job "${bids[$i]}" > "$WORK/got-b-$i.txt"
  status=$?
  set -e
  { [ "$status" -eq 0 ] || [ "$status" -eq 2 ]; } \
    || fail "job ${bids[$i]} lost across kill -9 (exit $status)"
  cmp -s "$WORK/got-b-$i.txt" "$WORK/ref-long-${bkeys[$i]}.txt" \
    || fail "job ${bids[$i]} report differs after kill -9 recovery"
done
# Completed pre-kill results also survive the restart, same bytes.
set +e
"$CLIENT" --socket "$SOCK" --job "${ids[0]}" > "$WORK/got-survivor.txt"
set -e
cmp -s "$WORK/got-survivor.txt" "$WORK/ref-${keys[0]}.txt" \
  || fail "pre-kill completed result changed across restart"
echo "leg B: 6/6 in-flight jobs recovered byte-identically"

echo "== leg C: SIGTERM graceful drain, restart resumes =="
cids=()
ckeys=()
for spec in "7 31" "8 32"; do
  set -- $spec
  ack=$("$CLIENT" --socket "$SOCK" --input "$WORK/mul$1.mmsyn" \
    --seed "$2" --population $LONG_POP --generations $LONG_GEN --async)
  cids+=("${ack%% *}")
  ckeys+=("$1-$2")
done
sleep 0.3
kill -TERM "$SERVER_PID"
set +e
wait "$SERVER_PID"
status=$?
set -e
SERVER_PID=
[ "$status" -eq 0 ] || fail "drain exited $status, expected 0"
grep -q "drained, exiting" "$WORK/serve.log" \
  || fail "server log lacks the drain completion note"
start_server --workers 4 --checkpoint-every 5
for i in "${!cids[@]}"; do
  set +e
  "$CLIENT" --socket "$SOCK" --job "${cids[$i]}" > "$WORK/got-c-$i.txt"
  status=$?
  set -e
  { [ "$status" -eq 0 ] || [ "$status" -eq 2 ]; } \
    || fail "job ${cids[$i]} lost across drain (exit $status)"
  cmp -s "$WORK/got-c-$i.txt" "$WORK/ref-long-${ckeys[$i]}.txt" \
    || fail "job ${cids[$i]} report differs after drain + restart"
done
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || fail "final drain did not exit 0"
SERVER_PID=
echo "leg C: drained jobs resumed byte-identically"

echo "== leg D: typed queue-full rejection =="
# Admission-only (no workers) so nothing drains the tiny queue.
start_server --workers 0 --queue-limit 2
"$CLIENT" --socket "$SOCK" --input "$WORK/mul5.mmsyn" --seed 41 \
  --population $POP --generations $GEN --async > /dev/null
"$CLIENT" --socket "$SOCK" --input "$WORK/mul5.mmsyn" --seed 42 \
  --population $POP --generations $GEN --async > /dev/null
set +e
"$CLIENT" --socket "$SOCK" --input "$WORK/mul5.mmsyn" --seed 43 \
  --population $POP --generations $GEN --async \
  > /dev/null 2> "$WORK/full.err"
status=$?
set -e
[ "$status" -eq 6 ] || fail "third submit exited $status, expected 6"
grep -q "queue full" "$WORK/full.err" \
  || fail "queue-full rejection lacks its message"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || true
SERVER_PID=
echo "leg D: queue-full rejection typed"

echo "== leg E: pinned CLI budget exit code =="
set +e
"$SF" --input "$WORK/mul8.mmsyn" --seed 77 --population $LONG_POP \
  --generations 1000000 --time-budget 0.05 \
  --quiet --report-timing=false > /dev/null
status=$?
set -e
[ "$status" -eq 3 ] || fail "CLI budget run exited $status, expected 3"

echo "server_soak: PASS"
