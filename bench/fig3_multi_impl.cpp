// Regenerates the paper's Fig. 3 motivational example (Example 2):
// multiple task implementations enable component shut-down.
//
// Tasks τ1 (mode O1) and τ4 (mode O2) share type A. Mapping both onto the
// ASIC's A-core maximises resource sharing but keeps PE1 and the bus
// powered in every mode (Fig. 3b); additionally implementing τ4 in
// software lets PE1 and CL0 be shut down during O2 (Fig. 3c), trading a
// little dynamic energy for a large static-power saving. The bench prints
// both mappings' power breakdowns and shows the synthesiser picks the
// multiple-implementation solution.
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "core/allocation_builder.hpp"
#include "core/cosynth.hpp"
#include "tgff/motivational.hpp"

using namespace mmsyn;

namespace {

struct Breakdown {
  double total_mw;
  double static_mw_o2;  // static power while O2 runs
  int active_pes_o2;
  int active_cls_o2;
};

Breakdown analyse(const System& system, const MultiModeMapping& mapping) {
  const Evaluator evaluator(system, EvaluationOptions{});
  const CoreAllocation cores = build_core_allocation(system, mapping);
  const Evaluation eval = evaluator.evaluate(mapping, cores);
  const ModeEvaluation& o2 = eval.modes[1];
  int pes = 0, cls = 0;
  for (bool a : o2.pe_active) pes += a ? 1 : 0;
  for (bool a : o2.cl_active) cls += a ? 1 : 0;
  return {eval.avg_power_true * 1e3, o2.static_power * 1e3, pes, cls};
}

}  // namespace

int main() {
  const System system = make_motivational_example2();

  const Breakdown shared = analyse(system, example2_mapping_shared());
  const Breakdown multi = analyse(system, example2_mapping_multiple_impl());

  TextTable table;
  table.set_header({"Mapping", "avg power (mW)", "static in O2 (mW)",
                    "PEs on in O2", "CLs on in O2"});
  table.add_row({"Fig. 3b shared A-core", TextTable::num(shared.total_mw, 3),
                 TextTable::num(shared.static_mw_o2, 3),
                 std::to_string(shared.active_pes_o2),
                 std::to_string(shared.active_cls_o2)});
  table.add_row({"Fig. 3c multiple impls", TextTable::num(multi.total_mw, 3),
                 TextTable::num(multi.static_mw_o2, 3),
                 std::to_string(multi.active_pes_o2),
                 std::to_string(multi.active_cls_o2)});
  table.print(std::cout,
              "Fig. 3: Example 2 — Multiple Task Implementations");
  std::printf("shut-down saving: %.2f %%\n\n",
              100.0 * (shared.total_mw - multi.total_mw) / shared.total_mw);

  // The synthesiser should find a solution at least as good as Fig. 3c.
  SynthesisOptions options;
  const SynthesisResult result = exhaustive_search(system, options);
  std::printf("exhaustive optimum: %.3f mW (Fig. 3c mapping: %.3f mW)\n",
              result.evaluation.avg_power_true * 1e3, multi.total_mw);

  const bool ok = multi.total_mw < shared.total_mw &&
                  multi.active_pes_o2 == 1 && multi.active_cls_o2 == 0 &&
                  result.evaluation.avg_power_true * 1e3 <=
                      multi.total_mw + 1e-9;
  std::printf("%s\n", ok ? "MATCH: multiple implementations enable shut-down"
                         : "MISMATCH: see numbers above");
  return ok ? 0 : 1;
}
