// Frozen pre-rewrite scheduler/DVS kernels, kept verbatim as the
// baseline the data-oriented kernels in src/sched and src/dvs are
// benchmarked and *bit-compared* against. micro_kernels runs both
// implementations on the same inputs, asserts byte-identical outputs,
// and reports the speedup ratio — a machine-independent number that the
// CI perf gate (tools/ci.sh) tracks through BENCH_micro_kernels.json.
//
// Do not "improve" this code: its value is being the exact algorithms
// the library shipped before the rewrite (allocation-heavy timelines,
// vector-of-vectors adjacency, linear-scan ready selection, full
// forward/backward passes per gradient step).
#pragma once

#include <vector>

#include "dvs/dvs_graph.hpp"
#include "dvs/pv_dvs.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/schedule.hpp"

namespace mmsyn::refk {

/// The pre-rewrite DVS-graph layout: AoS nodes plus vector-of-vectors
/// adjacency (the library's DvsGraph is now SoA/CSR).
struct RefDvsGraph {
  std::vector<DvsNode> nodes;
  std::vector<std::vector<int>> succs;
  std::vector<std::vector<int>> preds;
  std::vector<int> topo;
  std::vector<int> task_node;
  std::vector<int> comm_node;
};

/// Pre-rewrite scheduling_priorities (bottom levels via the by-value
/// Architecture::links_between on every edge).
[[nodiscard]] std::vector<double> ref_scheduling_priorities(
    const ListSchedulerInput& input);

/// Pre-rewrite list scheduler (linear-scan ready selection, per-call
/// timeline allocations).
[[nodiscard]] ModeSchedule ref_list_schedule(const ListSchedulerInput& input,
                                             const std::vector<double>& priority);

/// Pre-rewrite DVS-graph construction (std::map grouping, per-node
/// vector push_back adjacency).
[[nodiscard]] RefDvsGraph ref_build_dvs_graph(const Mode& mode,
                                              const ModeSchedule& schedule,
                                              const ModeMapping& mapping,
                                              const Architecture& arch,
                                              const TechLibrary& tech,
                                              bool scale_hardware = true);

/// Pre-rewrite PV-DVS (full forward/backward critical-path passes on
/// every gradient iteration).
[[nodiscard]] PvDvsResult ref_run_pv_dvs(const RefDvsGraph& graph,
                                         const Architecture& arch,
                                         const PvDvsOptions& options = {});

}  // namespace mmsyn::refk
