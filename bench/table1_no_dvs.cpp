// Regenerates Table 1: "Considering Execution Probabilities (w/o DVS)".
//
// For each of the 12 generated examples mul1–mul12, the probability-
// neglecting synthesis is compared against the proposed probability-aware
// synthesis at nominal supply voltage. Columns mirror the paper: average
// power of both approaches, optimisation CPU time, and the reduction.
// Expected shape: the proposed approach never loses and wins by
// double-digit percentages on most instances (paper: 4.2%–62.2%).
#include <iostream>

#include "bench/harness.hpp"
#include "tgff/suites.hpp"

int main(int argc, char** argv) {
  using namespace mmsyn;
  Flags flags = bench::make_standard_flags(/*default_repeats=*/5);
  if (!flags.parse(argc, argv)) return 1;

  SynthesisOptions options;
  options.use_dvs = false;
  bench::apply_standard_flags(flags, options);

  std::vector<bench::ComparisonRow> rows;
  for (int i = 1; i <= mul_count(); ++i) {
    const System system = make_mul(i);
    rows.push_back(bench::compare_approaches(
        system, options, static_cast<int>(flags.get_int("repeats")),
        static_cast<std::uint64_t>(flags.get_int("seed")),
        system.name + " (" + std::to_string(mul_mode_count(i)) + ")"));
    std::cerr << "done " << system.name << "\n";
  }
  bench::print_comparison_table(
      rows, "Table 1: Considering Execution Probabilities (w/o DVS)");
  return 0;
}
