// DVS ablation: quantifies the design decisions of Section 4.2.
//
// For a subset of the suite, the proposed (probability-aware) synthesis
// runs under four voltage-scaling policies:
//   nominal      — no DVS at all (Table 1 configuration)
//   sw-only      — DVS on software processors only (prior work [5,8,10])
//   sw+hw        — plus the Fig. 5 transformation for hardware cores
//   continuous   — sw+hw with an idealised continuous supply (upper bound
//                  on what the discrete levels could achieve)
// Expected shape: nominal > sw-only > sw+hw > continuous.
#include <cstdio>
#include <iostream>

#include "bench/harness.hpp"
#include "common/stats.hpp"
#include "tgff/suites.hpp"

using namespace mmsyn;

namespace {

double run_config(const System& system, bool use_dvs, bool scale_hw,
                  bool discrete, int repeats, const Flags& flags) {
  SynthesisOptions options;
  options.use_dvs = use_dvs;
  options.dvs_in_loop.scale_hardware = scale_hw;
  options.dvs_in_loop.discrete_voltages = discrete;
  options.dvs_final.scale_hardware = scale_hw;
  options.dvs_final.discrete_voltages = discrete;
  bench::apply_standard_flags(flags, options);
  RunningStats stats;
  for (int r = 0; r < repeats; ++r) {
    options.seed = static_cast<std::uint64_t>(flags.get_int("seed")) +
                   static_cast<std::uint64_t>(r);
    stats.add(synthesize(system, options).evaluation.avg_power_true * 1e3);
  }
  return stats.mean();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = bench::make_standard_flags(/*default_repeats=*/3);
  if (!flags.parse(argc, argv)) return 1;
  const int repeats = static_cast<int>(flags.get_int("repeats"));

  TextTable table;
  table.set_header({"Example", "nominal", "sw-only DVS", "sw+hw DVS",
                    "continuous", "(mW)"});
  for (const int idx : {4, 6, 7, 9}) {
    const System system = make_mul(idx);
    const double nominal =
        run_config(system, false, true, true, repeats, flags);
    const double sw_only =
        run_config(system, true, false, true, repeats, flags);
    const double sw_hw = run_config(system, true, true, true, repeats, flags);
    const double continuous =
        run_config(system, true, true, false, repeats, flags);
    table.add_row({system.name, TextTable::num(nominal),
                   TextTable::num(sw_only), TextTable::num(sw_hw),
                   TextTable::num(continuous), ""});
    std::fprintf(stderr, "done %s\n", system.name.c_str());
  }
  table.print(std::cout, "DVS ablation (proposed synthesis, average power)");
  return 0;
}
